/**
 * @file
 * Regenerates the Section 6 discussion: simple time sharing versus
 * the fairness mechanism.
 *
 * Part 1 reproduces the paper's worked numbers analytically: on the
 * Example 2 pair, a 400-cycle time-sharing quota yields speedups of
 * ~0.5 and ~0.8 (fairness ~0.6), while the mechanism equalizes both
 * at ~0.63 (fairness 1.0).
 *
 * Part 2 compares simulated time sharing against the mechanism on
 * the gcc:eon pair across a quota sweep: small quotas cost
 * throughput (frequent drains, no stall hiding), large quotas keep
 * throughput but do not hide misses either; the mechanism keeps
 * SOE's throughput advantage at controlled fairness.
 */

#include <iostream>

#include "core/analytic.hh"
#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"
#include "stats/statfmt.hh"

using namespace soefair;
using namespace soefair::core;
using namespace soefair::harness;
using harness::TextTable;

namespace
{

void
analyticPart()
{
    std::cout << "--- Part 1: the paper's Section 6 example "
              << "(analytical) ---\n\n";

    AnalyticSoe m({ThreadModel::fromIpcNoMiss(2.5, 15000.0),
                   ThreadModel::fromIpcNoMiss(2.5, 1000.0)},
                  MachineModel{300.0, 25.0});

    // Time sharing with a 400-cycle quota: both threads get equal
    // time; thread 1 runs at its no-miss speed during its slices,
    // thread 2's misses line up with slice ends and are hidden
    // (paper's accounting): speed_j = IPSw_j per round.
    // Model it as quotas of 400 cycles * IPC_no_miss instructions.
    std::vector<double> tsQuotas = {400.0 * 2.5, 400.0 * 2.5};
    const double sp1 =
        m.ipcSoe(0, tsQuotas) / m.ipcSingleThread(0);
    const double sp2 =
        m.ipcSoe(1, tsQuotas) / m.ipcSingleThread(1);

    auto fairQuotas = m.quotasForFairness(1.0);
    const double fp1 =
        m.ipcSoe(0, fairQuotas) / m.ipcSingleThread(0);
    const double fp2 =
        m.ipcSoe(1, fairQuotas) / m.ipcSingleThread(1);

    TextTable t({"scheme", "speedup thr1", "speedup thr2", "fairness",
                 "paper"});
    t.addRow({"time share (400 cyc)", TextTable::num(sp1, 3),
              TextTable::num(sp2, 3),
              TextTable::num(fairnessOfSpeedups({sp1, sp2}), 3),
              "0.5 / 0.8 -> 0.6"});
    t.addRow({"mechanism (F=1)", TextTable::num(fp1, 3),
              TextTable::num(fp2, 3),
              TextTable::num(fairnessOfSpeedups({fp1, fp2}), 3),
              "0.63 / 0.63 -> 1.0"});
    t.print(std::cout);
    std::cout << "\n";
}

void
simulatedPart()
{
    std::cout << "--- Part 2: simulated time sharing vs the "
              << "mechanism (gcc:eon) ---\n\n";

    MachineConfig mc = MachineConfig::benchDefault();
    RunConfig rc = RunConfig::fromEnv();
    Runner runner(mc);

    std::cerr << "[sec6] single-thread references...\n";
    auto stG = runner.runSingleThread(
        ThreadSpec::benchmark("gcc", pairSeed(0)), rc);
    auto stE = runner.runSingleThread(
        ThreadSpec::benchmark("eon", pairSeed(0)), rc);
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("gcc", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    TextTable t({"scheme", "ipc gcc", "ipc eon", "ipc total",
                 "fairness", "throughput vs ST mean"});
    const double stMean = 0.5 * (stG.ipc + stE.ipc);

    auto addRow = [&](const std::string &name,
                      const SoeRunResult &r) {
        const double f = fairnessOfSpeedups(
            {r.threads[0].ipc / stG.ipc, r.threads[1].ipc / stE.ipc});
        t.addRow({name, TextTable::num(r.threads[0].ipc, 3),
                  TextTable::num(r.threads[1].ipc, 3),
                  TextTable::num(r.ipcTotal, 3), TextTable::num(f, 3),
                  TextTable::num(r.ipcTotal / stMean, 3)});
    };

    for (Tick quota : {Tick(400), Tick(2000), Tick(10000)}) {
        std::cerr << "[sec6] time share quota " << quota << "...\n";
        soe::TimeSharePolicy ts(quota);
        addRow("time share " + std::to_string(quota) + " cyc",
               runner.runSoe(specs, ts, rc));
    }
    for (double f : {0.5, 1.0}) {
        std::cerr << "[sec6] mechanism F="
                  << statistics::statfmt::csv(f) << "...\n";
        soe::FairnessPolicy fp(f, mc.soe.missLatency, 2);
        addRow("mechanism F=" + TextTable::num(f, 2),
               runner.runSoe(specs, fp, rc));
    }
    std::cerr << "[sec6] plain SOE...\n";
    soe::MissOnlyPolicy none;
    addRow("plain SOE (F=0)", runner.runSoe(specs, none, rc));

    t.print(std::cout);
    std::cout <<
        "\nShape checks vs the paper: time sharing cannot hide miss "
        "stalls, so its\nthroughput stays near the single-thread "
        "mean regardless of quota; the\nmechanism keeps most of "
        "plain SOE's throughput gain while bounding the\nspeedup "
        "ratio.\n";
}

} // namespace

int
main()
{
    analyticPart();
    simulatedPart();
    return 0;
}
