/**
 * @file
 * Shared driver for the evaluation benches (Figures 6, 7 and 8).
 *
 * All three figures are projections of one dataset: the 16 benchmark
 * pairs, each run single-threaded and under SOE at F = 0, 1/4, 1/2
 * and 1. Running that sweep takes minutes, so the first bench to
 * need it writes a cache file (soefair_eval_cache.txt under
 * $SOEFAIR_EVAL_DIR, default build/) and the others load it. The
 * cache key is the campaign's full configuration fingerprint: any
 * configuration change (scale, machine, levels) invalidates it
 * automatically. Setting SOEFAIR_GATEWAY=unix:/path (or
 * tcp:host:port) reroutes the sweep through a remote sweep gateway
 * instead of draining it locally.
 */

#ifndef SOEFAIR_BENCH_EVAL_COMMON_HH
#define SOEFAIR_BENCH_EVAL_COMMON_HH

#include <string>
#include <vector>

#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace soefair
{
namespace bench
{

/** The machine/run configuration every evaluation bench uses. */
harness::MachineConfig evalMachine();
harness::RunConfig evalRunConfig();

/**
 * The evaluation dataset plus explicit gaps. `pairs` holds only
 * pairs with every cell present (safe for PairResult::level());
 * `missing` lists each cell the campaign could not produce, which
 * the figure drivers print as MISSING(...) markers instead of
 * silently dropping rows.
 */
struct EvalData
{
    std::vector<harness::PairResult> pairs;
    std::vector<harness::MissingCell> missing;

    bool complete() const { return missing.empty(); }
};

/**
 * Obtain the full evaluation dataset, from the cache file if its
 * key matches the campaign's full configuration fingerprint, else
 * by draining the sweep through the durable job service (see
 * docs/robustness.md): jobs are enqueued into
 * $SOEFAIR_EVAL_DIR/soefair_eval_queue/ and results committed to
 * the content-addressed result cache soefair_eval_rcache/ next to
 * it, so a second figure driver — or a re-run after a crash — is
 * served from the cache (single-thread baselines included) instead
 * of re-simulating. The text cache is written only once the
 * campaign is complete. With SOEFAIR_GATEWAY set, the campaign is
 * instead submitted to that gateway and its result stream watched.
 */
EvalData evaluationData();

/** Back-compat wrapper: evaluationData().pairs (warns on gaps). */
std::vector<harness::PairResult> evaluationResults();

/** The standard enforcement levels: 0, 1/4, 1/2, 1. */
std::vector<double> levels();

} // namespace bench
} // namespace soefair

#endif // SOEFAIR_BENCH_EVAL_COMMON_HH
