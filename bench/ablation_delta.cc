/**
 * @file
 * Ablation: sensitivity of the mechanism to the sampling period
 * delta (Section 3.1 argues delta must be "large enough for good
 * statistical averaging but not too large so performance phases are
 * tracked"; the paper uses 250,000 cycles).
 *
 * Runs gcc:eon at F = 1/2 for several delta values and reports the
 * achieved fairness and throughput.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    Runner stRunner(MachineConfig::benchDefault());

    std::cerr << "[delta] single-thread references...\n";
    auto stG = stRunner.runSingleThread(
        ThreadSpec::benchmark("gcc", pairSeed(0)), rc);
    auto stE = stRunner.runSingleThread(
        ThreadSpec::benchmark("eon", pairSeed(0)), rc);
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("gcc", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    std::cout << "Ablation: sampling period delta (gcc:eon, F = 1/2)"
              << "\n\n";
    TextTable t({"delta", "maxCycQuota", "fairness", "ipc total",
                 "forced switches"});

    for (Tick delta : {Tick(25000), Tick(50000), Tick(100000),
                       Tick(250000), Tick(1000000)}) {
        MachineConfig mc = MachineConfig::paperDefault();
        mc.soe.delta = delta;
        mc.soe.maxCyclesQuota = delta / 4;
        Runner runner(mc);
        std::cerr << "[delta] " << delta << "...\n";
        soe::FairnessPolicy pol(0.5, mc.soe.missLatency, 2);
        auto res = runner.runSoe(specs, pol, rc);
        const double fair = core::fairnessOfSpeedups(
            {res.threads[0].ipc / stG.ipc,
             res.threads[1].ipc / stE.ipc});
        t.addRow({std::to_string(delta),
                  std::to_string(mc.soe.maxCyclesQuota),
                  TextTable::num(fair, 3),
                  TextTable::num(res.ipcTotal, 3),
                  std::to_string(res.switchesForced)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: very small delta reacts fast but "
              << "estimates noisily; very large\ndelta enforces "
              << "stale quotas (fairness converges more slowly on "
              << "short runs).\n";
    return 0;
}
