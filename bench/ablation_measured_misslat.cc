/**
 * @file
 * Ablation of the Section 6 extension: monitoring the event latency
 * with hardware counters instead of assuming the predefined
 * constant ("in these cases, event's latency should be monitored
 * using hardware counters... Miss_lat should also be calculated").
 *
 * The mechanism's Eq. 9 assumes Miss_lat = 300. On machines whose
 * real memory latency differs, the fixed constant mis-sizes quotas;
 * the measured mode recovers the right value automatically. Runs
 * gcc:eon at F = 1/2 on machines with 150-, 300- and 600-cycle
 * memory, with fixed-300 and with measured Miss_lat.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("gcc", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    std::cout << "Ablation: fixed vs measured Miss_lat "
              << "(gcc:eon, F = 1/2, Eq. 9 assumes 300)\n\n";
    TextTable t({"memory latency", "Miss_lat mode", "fairness",
                 "ipc total"});

    for (unsigned memLat : {150u, 300u, 600u}) {
        MachineConfig mc = MachineConfig::benchDefault();
        // Total L2-miss cost ~= memLatency + bus + L1 + L2 (~19).
        mc.mem.memLatency = memLat - 19;
        Runner runner(mc);

        std::cerr << "[mlat] references at " << memLat << "...\n";
        auto stA = runner.runSingleThread(specs[0], rc);
        auto stB = runner.runSingleThread(specs[1], rc);

        for (bool measured : {false, true}) {
            std::cerr << "[mlat] memLat=" << memLat << " measured="
                      << measured << "...\n";
            soe::FairnessPolicy pol(0.5, 300.0, 2, measured);
            auto res = runner.runSoe(specs, pol, rc);
            const double fair = core::fairnessOfSpeedups(
                {res.threads[0].ipc / stA.ipc,
                 res.threads[1].ipc / stB.ipc});
            t.addRow({std::to_string(memLat) + " cycles",
                      measured ? "measured" : "fixed 300",
                      TextTable::num(fair, 3),
                      TextTable::num(res.ipcTotal, 3)});
        }
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: at 300-cycle memory the modes "
              << "coincide. With the fixed\nconstant the achieved "
              << "fairness drifts with the machine (under-enforced "
              << "on\nfast memory, over-enforced — extra fairness "
              << "paid for with throughput — on\nslow memory); the "
              << "measured mode delivers the same fairness level on "
              << "every\nmachine, which is the point of monitoring "
              << "the event latency.\n";
    return 0;
}
