/**
 * @file
 * Regenerates paper Table 3: the simulated machine parameters.
 */

#include <iostream>

#include "harness/machine_config.hh"

int
main()
{
    soefair::harness::MachineConfig::paperDefault().print(std::cout);
    return 0;
}
