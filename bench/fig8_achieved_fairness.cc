/**
 * @file
 * Regenerates paper Figure 8: achieved fairness with and without
 * enforcement. Left: per-run achieved fairness, runs ordered by
 * their F = 0 fairness. Right: the mean and standard deviation of
 * min(F, achieved) per enforcement level (truncation removes the
 * bias from runs that are fair without enforcement).
 */

#include <algorithm>
#include <iostream>

#include "core/metrics.hh"
#include "eval_common.hh"
#include "harness/table.hh"

using namespace soefair;
using namespace soefair::bench;
using harness::TextTable;

int
main()
{
    auto data = evaluationData();
    const auto &results = data.pairs;

    // Order runs by their F = 0 achieved fairness (paper's x-axis).
    std::vector<const harness::PairResult *> ordered;
    for (const auto &pr : results)
        ordered.push_back(&pr);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  return a->level(0.0).fairness <
                         b->level(0.0).fairness;
              });

    std::cout << "Figure 8 (left): achieved fairness per run, "
              << "ordered by F = 0 fairness\n\n";
    TextTable t({"pair", "F=0", "F=1/4", "F=1/2", "F=1"});
    for (const auto &m : data.missing)
        t.addSpanRow(m.marker());
    for (const auto *pr : ordered) {
        t.addRow({pr->label(),
                  TextTable::num(pr->level(0.0).fairness, 3),
                  TextTable::num(pr->level(0.25).fairness, 3),
                  TextTable::num(pr->level(0.5).fairness, 3),
                  TextTable::num(pr->level(1.0).fairness, 3)});
    }
    t.print(std::cout);

    std::cout << "\nFigure 8 (right): average achieved fairness, "
              << "truncated at the target\n(min(F, achieved); no "
              << "truncation at F = 0)\n\n";
    TextTable avg({"F", "mean", "stddev", "target"});
    for (double f : levels()) {
        std::vector<double> vals;
        for (const auto &pr : results) {
            vals.push_back(
                core::truncateAtTarget(pr.level(f).fairness, f));
        }
        if (vals.empty()) {
            avg.addRow({f == 0 ? "0" : TextTable::num(f, 2), "-",
                        "-", f == 0 ? "-" : TextTable::num(f, 2)});
            continue;
        }
        auto ms = core::meanStd(vals);
        avg.addRow({f == 0 ? "0" : TextTable::num(f, 2),
                    TextTable::num(ms.mean, 3),
                    TextTable::num(ms.stddev, 3),
                    f == 0 ? "-" : TextTable::num(f, 2)});
    }
    avg.print(std::cout);

    // Headline: fraction of F = 0 runs with severe unfairness.
    unsigned severe = 0;
    for (const auto &pr : results)
        severe += pr.level(0.0).fairness < 0.1 ? 1 : 0;
    std::cout << "\n" << severe << " of " << results.size()
              << " runs have F=0 fairness below 0.1 (paper: over a "
              << "third of runs had one\nthread running 10-100x "
              << "slower than alone).\n";
    return 0;
}
