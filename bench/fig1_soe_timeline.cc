/**
 * @file
 * Regenerates paper Figure 1 (the motivating intuition figure) from
 * real simulation: the execution timeline of two threads under SOE
 * when one (eon-like) rarely misses and the other (gcc-like) misses
 * constantly. Rendered as compressed ASCII segments:
 *
 *   [T0 x 1203c] Sw [T1 x 214c] Sw ...
 *
 * plus a proportional strip chart. The unfairness is visible
 * directly: thread 0's segments dwarf thread 1's. A second timeline
 * with F = 1/2 shows the induced switch points shortening the long
 * segments (the paper's Figure 2 bottom, with enforcement).
 */

#include <iostream>
#include <vector>

#include "harness/machine_config.hh"
#include "harness/system.hh"
#include "soe/engine.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;

namespace
{

struct Segment
{
    ThreadID tid;
    Tick start;
    Tick end;
};

std::vector<Segment>
recordTimeline(soe::SchedulingPolicy &policy, Tick cycles)
{
    auto mc = MachineConfig::benchDefault();
    System sys(mc, {ThreadSpec::benchmark("eon", 1),
                    ThreadSpec::benchmark("gcc", 2)});
    sys.warmCaches(150 * 1000);
    soe::SoeEngine eng(mc.soe, policy, 2, &sys.stats());
    sys.start(&eng);
    // Let the enforcement settle past the first delta window.
    sys.step(220 * 1000);

    std::vector<Segment> segs;
    ThreadID cur = sys.core().activeThread();
    Tick segStart = sys.now();
    const Tick until = sys.now() + cycles;
    while (sys.now() < until) {
        sys.step(1);
        if (sys.core().activeThread() != cur) {
            segs.push_back({cur, segStart, sys.now()});
            cur = sys.core().activeThread();
            segStart = sys.now();
        }
    }
    segs.push_back({cur, segStart, sys.now()});
    return segs;
}

void
print(const char *title, const std::vector<Segment> &segs)
{
    std::cout << title << "\n  ";
    // Compressed segment list (first ~14 segments).
    std::size_t shown = 0;
    for (const auto &s : segs) {
        if (++shown > 14) {
            std::cout << "...";
            break;
        }
        std::cout << "[T" << s.tid << " " << (s.end - s.start)
                  << "c] ";
    }
    std::cout << "\n  ";
    // Proportional strip: one character per ~120 cycles.
    const Tick t0 = segs.front().start;
    const Tick t1 = segs.back().end;
    const double perChar = double(t1 - t0) / 72.0;
    for (const auto &s : segs) {
        const int chars =
            int(double(s.end - s.start) / perChar + 0.5);
        for (int i = 0; i < chars; ++i)
            std::cout << (s.tid == 0 ? '0' : '1');
    }
    std::cout << "\n";

    Tick run[2] = {0, 0};
    for (const auto &s : segs)
        run[s.tid] += s.end - s.start;
    std::cout << "  core share: T0(eon) "
              << 100 * run[0] / (run[0] + run[1]) << "%, T1(gcc) "
              << 100 * run[1] / (run[0] + run[1]) << "%  ("
              << segs.size() - 1 << " switches)\n\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 1: SOE execution timelines (eon:gcc, ~9000 "
              << "cycles after warmup)\n\n";

    soe::MissOnlyPolicy plain;
    print("--- plain SOE (switch on L2 miss only, F = 0) ---",
          recordTimeline(plain, 9000));

    soe::FairnessPolicy fair(0.5, 300.0, 2);
    print("--- fairness enforced to F = 1/2 (induced switches) ---",
          recordTimeline(fair, 9000));

    std::cout << "Reading the strips: under plain SOE the rarely-"
              << "missing thread (0) owns long\nstretches while "
              << "thread 1 gets slivers between its own misses — "
              << "the paper's\nFigure 1. Enforcement (bottom) forces "
              << "switch points that cap thread 0's\nsegments.\n";
    return 0;
}
