/**
 * @file
 * Machine-readable performance report: runs the end-to-end scenarios
 * from perf_scenarios and emits `BENCH_perf.json` — items/sec per
 * benchmark plus a machine fingerprint — so the repo's perf
 * trajectory is diffable across commits (tools/bench_compare.py).
 *
 * Usage: perf_report [--items N] [--out FILE]
 *
 *   --items N   instructions per end-to-end scenario (default
 *               200000; the miss-heavy pair uses N/10 because its
 *               ff-off leg simulates ~250 cycles per instruction).
 *   --out FILE  output path (default BENCH_perf.json).
 *
 * Raw items/sec values are only comparable on the same machine and
 * build type; the derived `ff_speedup_miss_heavy` ratio (fast-forward
 * on vs off on the serial pointer-chase scenario) is
 * machine-independent and is the number the ≥5x acceptance gate
 * checks.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "perf_scenarios.hh"
#include "stats/statfmt.hh"

using namespace soefair;
using namespace soefair::bench;

namespace
{

struct NamedResult
{
    std::string name;
    ScenarioResult r;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

const char *
osName()
{
#if defined(__linux__)
    return "linux";
#elif defined(__APPLE__)
    return "darwin";
#elif defined(_WIN32)
    return "windows";
#else
    return "unknown";
#endif
}

const char *
archName()
{
#if defined(__x86_64__) || defined(_M_X64)
    return "x86_64";
#elif defined(__aarch64__)
    return "aarch64";
#else
    return "unknown";
#endif
}

const char *
buildType()
{
#ifdef NDEBUG
    return "release";
#else
    return "debug";
#endif
}

bool
auditsEnabled()
{
    // Always defined (0 or 1) via sim/invariant.hh, pulled in
    // through perf_scenarios.hh.
    return SOEFAIR_AUDIT_ENABLED != 0;
}

void
writeReport(std::ostream &os, const std::vector<NamedResult> &results,
            double ff_speedup, std::uint64_t items)
{
    os << "{\n";
    os << "  \"schema\": 1,\n";
    os << "  \"suite\": \"soefair-perf\",\n";
    os << "  \"machine\": {\n";
    os << "    \"os\": \"" << osName() << "\",\n";
    os << "    \"arch\": \"" << archName() << "\",\n";
    os << "    \"cpus\": " << std::thread::hardware_concurrency()
       << ",\n";
    os << "    \"compiler\": \"" << jsonEscape(__VERSION__) << "\",\n";
    os << "    \"build\": \"" << buildType() << "\",\n";
    os << "    \"audits\": " << (auditsEnabled() ? "true" : "false")
       << "\n";
    os << "  },\n";
    os << "  \"config\": { \"items\": " << items << " },\n";
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const NamedResult &n = results[i];
        os << "    { \"name\": \"" << n.name << "\", "
           << "\"items_per_sec\": " << std::uint64_t(n.r.instrsPerSec)
           << ", \"items\": " << n.r.instrs << ", \"seconds\": "
           << statistics::statfmt::csv(n.r.seconds)
           << ", \"skipped_frac\": "
           << statistics::statfmt::csv(n.r.skippedFrac)
           << " }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"derived\": { \"ff_speedup_miss_heavy\": "
       << statistics::statfmt::csv(ff_speedup)
       << " }\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t items = 200 * 1000;
    std::string outPath = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--items") && i + 1 < argc) {
            items = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "usage: perf_report [--items N] [--out FILE]"
                      << std::endl;
            return 2;
        }
    }
    if (items < 10000)
        items = 10000; // below this the timed windows are all noise
    const std::uint64_t missItems = items / 10;

    std::vector<NamedResult> results;

    {
        SoeSim sim(lowMissPair(), true);
        results.push_back(
            {"soe_e2e_low_miss", measureScenario(sim, items)});
    }
    {
        SoeSim sim(highMissPair(), true);
        results.push_back(
            {"soe_e2e_high_miss", measureScenario(sim, items)});
    }
    ScenarioResult on, off;
    {
        SoeSim sim(missHeavySingle(), true);
        on = measureScenario(sim, missItems);
        results.push_back({"miss_heavy_ff_on", on});
    }
    {
        SoeSim sim(missHeavySingle(), false);
        off = measureScenario(sim, missItems);
        results.push_back({"miss_heavy_ff_off", off});
    }
    const double speedup = off.instrsPerSec > 0.0
        ? on.instrsPerSec / off.instrsPerSec : 0.0;

    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "perf_report: cannot open " << outPath
                  << std::endl;
        return 1;
    }
    writeReport(out, results, speedup, items);

    for (const NamedResult &n : results) {
        std::cout << n.name << ": "
                  << std::uint64_t(n.r.instrsPerSec)
                  << " instrs/sec (skipped "
                  << std::uint64_t(n.r.skippedFrac * 100.0) << "%)"
                  << std::endl;
    }
    std::cout << "ff_speedup_miss_heavy: "
              << statistics::statfmt::csv(speedup) << "x -> "
              << outPath << std::endl;
    return 0;
}
