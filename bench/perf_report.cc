/**
 * @file
 * Machine-readable performance report: runs the end-to-end scenarios
 * from perf_scenarios and emits `BENCH_perf.json` — items/sec per
 * benchmark plus a machine fingerprint — so the repo's perf
 * trajectory is diffable across commits (tools/bench_compare.py).
 *
 * Usage: perf_report [--items N] [--out FILE]
 *
 *   --items N   instructions per end-to-end scenario (default
 *               200000; the miss-heavy pair uses N/10 because its
 *               ff-off leg simulates ~250 cycles per instruction).
 *   --out FILE  output path (default BENCH_perf.json).
 *
 * Raw items/sec values are only comparable on the same machine and
 * build type; the derived ratios are machine-independent and carry
 * the acceptance gates:
 *
 *  - `ff_speedup_miss_heavy` (fast-forward on vs off on the serial
 *    pointer-chase scenario), gated >= 5x;
 *  - `thread_speedup_short_jobs` (in-process thread-pool drain vs
 *    fork-per-job drain of the same short-job sweep campaign, cold
 *    caches, same parallelism), gated >= 3x via
 *    bench_compare.py --min-thread-speedup.
 */

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/service/service.hh"
#include "perf_scenarios.hh"
#include "stats/statfmt.hh"

using namespace soefair;
using namespace soefair::bench;

namespace
{

struct NamedResult
{
    std::string name;
    ScenarioResult r;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

const char *
osName()
{
#if defined(__linux__)
    return "linux";
#elif defined(__APPLE__)
    return "darwin";
#elif defined(_WIN32)
    return "windows";
#else
    return "unknown";
#endif
}

const char *
archName()
{
#if defined(__x86_64__) || defined(_M_X64)
    return "x86_64";
#elif defined(__aarch64__)
    return "aarch64";
#else
    return "unknown";
#endif
}

const char *
buildType()
{
#ifdef NDEBUG
    return "release";
#else
    return "debug";
#endif
}

bool
auditsEnabled()
{
    // Always defined (0 or 1) via sim/invariant.hh, pulled in
    // through perf_scenarios.hh.
    return SOEFAIR_AUDIT_ENABLED != 0;
}

/**
 * Drain one short-job sweep campaign (16 jobs, tiny instruction
 * windows: dispatch overhead dominates simulation work) and return
 * jobs completed per second. threads == 0 is the fork-per-job
 * executor with `par` slots; threads == par is the in-process pool.
 * Cold queue + no result cache, so the two modes run identical
 * simulation work and differ only in executor overhead.
 */
double
sweepJobsPerSec(unsigned threads, unsigned par)
{
    namespace svc = harness::service;
    svc::CampaignManifest m;
    // 8 distinct benchmarks -> 8 single-thread jobs + 4 SOE cells.
    // F=0.5 (fairness-enforced) cells only: the F=0 miss-only cell
    // simulates orders of magnitude more cycles at the same
    // instruction count and would swamp executor overhead.
    m.pairs = {{"gcc", "eon"},
               {"mcf", "crafty"},
               {"swim", "vortex"},
               {"bzip2", "wupwise"}};
    m.levels = {0.5};
    harness::RunConfig rc;
    rc.warmupInstrs = 200;
    rc.timingWarmInstrs = 50;
    rc.measureInstrs = 200;
    m.rc = rc;

    const std::string root = "/tmp/soefair_perf_sweep_" +
                             std::to_string(::getpid()) +
                             (threads > 0 ? "_thr" : "_fork");
    std::filesystem::remove_all(root);
    svc::ServiceConfig cfg;
    cfg.queueDir = root;
    cfg.workerName = "perf";
    cfg.deadlineSeconds = 120.0;
    cfg.leaseSeconds = 120.0;
    cfg.slots = par;
    cfg.threads = threads;

    double secs = 0.0;
    unsigned completed = 0;
    {
        svc::SweepService service(cfg);
        service.enqueueCampaign(m);
        const auto t0 = std::chrono::steady_clock::now();
        const svc::WorkerStats ws = service.serve();
        secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
        completed = ws.completed;
    }
    std::filesystem::remove_all(root);
    return secs > 0.0 ? double(completed) / secs : 0.0;
}

void
writeReport(std::ostream &os, const std::vector<NamedResult> &results,
            double ff_speedup, double fork_jps, double thr_jps,
            double thread_speedup, std::uint64_t items)
{
    os << "{\n";
    os << "  \"schema\": 1,\n";
    os << "  \"suite\": \"soefair-perf\",\n";
    os << "  \"machine\": {\n";
    os << "    \"os\": \"" << osName() << "\",\n";
    os << "    \"arch\": \"" << archName() << "\",\n";
    os << "    \"cpus\": " << std::thread::hardware_concurrency()
       << ",\n";
    os << "    \"compiler\": \"" << jsonEscape(__VERSION__) << "\",\n";
    os << "    \"build\": \"" << buildType() << "\",\n";
    os << "    \"audits\": " << (auditsEnabled() ? "true" : "false")
       << "\n";
    os << "  },\n";
    os << "  \"config\": { \"items\": " << items << " },\n";
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const NamedResult &n = results[i];
        os << "    { \"name\": \"" << n.name << "\", "
           << "\"items_per_sec\": " << std::uint64_t(n.r.instrsPerSec)
           << ", \"items\": " << n.r.instrs << ", \"seconds\": "
           << statistics::statfmt::csv(n.r.seconds)
           << ", \"skipped_frac\": "
           << statistics::statfmt::csv(n.r.skippedFrac)
           << " },\n";
    }
    // The sweep-executor scenarios count jobs, not instructions;
    // they still ride the same items_per_sec regression check.
    os << "    { \"name\": \"jobs_per_sec_short_fork\", "
       << "\"items_per_sec\": "
       << statistics::statfmt::csv(fork_jps) << " },\n";
    os << "    { \"name\": \"jobs_per_sec_short_threaded\", "
       << "\"items_per_sec\": "
       << statistics::statfmt::csv(thr_jps) << " }\n";
    os << "  ],\n";
    os << "  \"derived\": {\n";
    os << "    \"ff_speedup_miss_heavy\": "
       << statistics::statfmt::csv(ff_speedup) << ",\n";
    os << "    \"thread_speedup_short_jobs\": "
       << statistics::statfmt::csv(thread_speedup) << "\n";
    os << "  }\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t items = 200 * 1000;
    std::string outPath = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--items") && i + 1 < argc) {
            items = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "usage: perf_report [--items N] [--out FILE]"
                      << std::endl;
            return 2;
        }
    }
    if (items < 10000)
        items = 10000; // below this the timed windows are all noise
    const std::uint64_t missItems = items / 10;

    std::vector<NamedResult> results;

    {
        SoeSim sim(lowMissPair(), true);
        results.push_back(
            {"soe_e2e_low_miss", measureScenario(sim, items)});
    }
    {
        SoeSim sim(highMissPair(), true);
        results.push_back(
            {"soe_e2e_high_miss", measureScenario(sim, items)});
    }
    ScenarioResult on, off;
    {
        SoeSim sim(missHeavySingle(), true);
        on = measureScenario(sim, missItems);
        results.push_back({"miss_heavy_ff_on", on});
    }
    {
        SoeSim sim(missHeavySingle(), false);
        off = measureScenario(sim, missItems);
        results.push_back({"miss_heavy_ff_off", off});
    }
    const double speedup = off.instrsPerSec > 0.0
        ? on.instrsPerSec / off.instrsPerSec : 0.0;

    // Sweep-executor comparison: same campaign, same parallelism,
    // fork-per-job vs in-process thread pool.
    unsigned par = std::thread::hardware_concurrency();
    if (par < 1)
        par = 1;
    if (par > 8)
        par = 8;
    const double forkJps = sweepJobsPerSec(0, par);
    const double thrJps = sweepJobsPerSec(par, par);
    const double threadSpeedup =
        forkJps > 0.0 ? thrJps / forkJps : 0.0;

    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "perf_report: cannot open " << outPath
                  << std::endl;
        return 1;
    }
    writeReport(out, results, speedup, forkJps, thrJps,
                threadSpeedup, items);

    for (const NamedResult &n : results) {
        std::cout << n.name << ": "
                  << std::uint64_t(n.r.instrsPerSec)
                  << " instrs/sec (skipped "
                  << std::uint64_t(n.r.skippedFrac * 100.0) << "%)"
                  << std::endl;
    }
    std::cout << "jobs_per_sec_short: fork "
              << statistics::statfmt::csv(forkJps) << ", threaded "
              << statistics::statfmt::csv(thrJps) << " ("
              << statistics::statfmt::csv(threadSpeedup) << "x)"
              << std::endl;
    std::cout << "ff_speedup_miss_heavy: "
              << statistics::statfmt::csv(speedup) << "x -> "
              << outPath << std::endl;
    return 0;
}
