/**
 * @file
 * Regenerates paper Figure 5: the gcc:eon detailed examination.
 *
 *  - top: per-window estimated IPC_ST of each thread vs the real
 *    single-thread IPC over the same instruction range;
 *  - middle: per-window speedups of both threads;
 *  - bottom: achieved fairness per window.
 *
 * Run with fairness enforced to F = 1/4 (as in the paper) plus the
 * F = 0 baseline for comparison.
 */

#include <algorithm>
#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

namespace
{

/**
 * Real single-thread IPC over the instruction window [i0, i1),
 * interpolated from the recorded cycles-at-instruction samples.
 */
double
realIpcOver(const StRunResult &st, std::uint64_t i0, std::uint64_t i1)
{
    if (st.cyclesAtInstr.empty() || st.windowInstrs == 0 || i1 <= i0)
        return st.ipc;
    auto cyclesAt = [&](std::uint64_t instr) -> double {
        const double idx = double(instr) / double(st.windowInstrs);
        const std::size_t lo = std::size_t(idx);
        if (lo + 1 >= st.cyclesAtInstr.size())
            return double(st.cyclesAtInstr.back());
        const double frac = idx - double(lo);
        const double a = lo == 0 ? 0.0 : double(st.cyclesAtInstr[lo - 1]);
        const double b = double(st.cyclesAtInstr[lo]);
        (void)frac;
        return a + (b - a) * (idx - double(lo));
    };
    const double dc = cyclesAt(i1) - cyclesAt(i0);
    return dc > 0 ? double(i1 - i0) / dc : st.ipc;
}

void
printTimeline(const char *title, const SoeRunResult &res,
              const StRunResult &stA, const StRunResult &stB)
{
    std::cout << title << "\n";
    TextTable t({"cycle", "est_ipcST_gcc", "real_ipcST_gcc",
                 "est_ipcST_eon", "real_ipcST_eon", "speedup_gcc",
                 "speedup_eon", "fairness", "quota_gcc",
                 "quota_eon"});

    std::uint64_t instrA = 0, instrB = 0;
    for (const auto &w : res.windows) {
        const auto &a = w.threads[0];
        const auto &b = w.threads[1];
        const double realA =
            realIpcOver(stA, instrA, instrA + a.instrs);
        const double realB =
            realIpcOver(stB, instrB, instrB + b.instrs);
        instrA += a.instrs;
        instrB += b.instrs;
        const double spA = realA > 0 ? a.ipcSoe / realA : 0.0;
        const double spB = realB > 0 ? b.ipcSoe / realB : 0.0;
        const double fair = (spA > 0 && spB > 0)
            ? std::min(spA, spB) / std::max(spA, spB)
            : 0.0;
        auto quota = [](double q) {
            return q > 1e17 ? std::string("inf") : TextTable::num(q, 0);
        };
        t.addRow({std::to_string(w.endTick),
                  TextTable::num(a.estIpcSt, 3),
                  TextTable::num(realA, 3),
                  TextTable::num(b.estIpcSt, 3),
                  TextTable::num(realB, 3),
                  TextTable::num(spA, 3), TextTable::num(spB, 3),
                  TextTable::num(fair, 3), quota(a.quota),
                  quota(b.quota)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    // Figure 5 is one detailed pair, so it can afford the paper's
    // full delta = 250k cycles and a longer run.
    MachineConfig mc = MachineConfig::paperDefault();
    RunConfig rc = RunConfig::fromEnv();
    rc.measureInstrs = std::max<std::uint64_t>(rc.measureInstrs, 600 * 1000);

    Runner runner(mc);
    std::cerr << "[fig5] single-thread reference runs...\n";
    auto stGcc = runner.runSingleThread(
        ThreadSpec::benchmark("gcc", pairSeed(0)), rc, 25 * 1000);
    auto stEon = runner.runSingleThread(
        ThreadSpec::benchmark("eon", pairSeed(0)), rc, 25 * 1000);

    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("gcc", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    std::cout << "Figure 5: gcc:eon detailed examination "
              << "(delta = " << mc.soe.delta << " cycles)\n"
              << "Real IPC_ST: gcc = " << TextTable::num(stGcc.ipc, 3)
              << ", eon = " << TextTable::num(stEon.ipc, 3) << "\n\n";

    std::cerr << "[fig5] SOE run, F = 1/4...\n";
    soe::FairnessPolicy fair(0.25, mc.soe.missLatency, 2);
    auto resF = runner.runSoe(specs, fair, rc, true);
    printTimeline("--- fairness enforced to F = 1/4 ---", resF,
                  stGcc, stEon);

    std::cerr << "[fig5] SOE run, F = 0...\n";
    soe::MissOnlyPolicy none;
    auto res0 = runner.runSoe(specs, none, rc, true);
    printTimeline("--- no enforcement (F = 0) ---", res0, stGcc,
                  stEon);

    const double gcc0 = res0.threads[0].ipc;
    const double gccF = resF.threads[0].ipc;
    std::cout << "gcc IPC without enforcement: "
              << TextTable::num(gcc0, 4)
              << "; with F = 1/4: " << TextTable::num(gccF, 4)
              << " (" << TextTable::num(gccF / gcc0, 1)
              << "x faster; the paper reports ~20x for its traces)\n";
    return 0;
}
