/**
 * @file
 * Section 6's metric discussion, quantified over the evaluation
 * sweep: weighted speedup (Snavely et al.) and harmonic-mean
 * fairness (Luo et al.) versus the paper's two-metric approach
 * (min-ratio fairness + IPC).
 *
 * The paper's argument: single combined metrics give "insufficient
 * insight into either throughput or fairness". Concretely: weighted
 * speedup barely moves between a starving F = 0 run and an enforced
 * F = 1 run, and the harmonic mean conflates moderate unfairness
 * with throughput loss, while the (fairness, IPC) pair separates
 * the two dimensions.
 */

#include <iostream>

#include "core/metrics.hh"
#include "eval_common.hh"
#include "harness/table.hh"

using namespace soefair;
using namespace soefair::bench;
using harness::TextTable;

int
main()
{
    auto results = evaluationResults();

    std::cout << "Section 6: metric comparison over the 16-pair "
              << "evaluation\n\n";
    TextTable t({"pair", "F", "fairness", "IPC", "weighted speedup",
                 "harmonic mean"});

    std::vector<double> wsDelta, hmAtF0;
    for (const auto &pr : results) {
        bool first = true;
        for (const auto &l : pr.levels) {
            const double ws = core::weightedSpeedup(l.speedups);
            const double hm =
                core::harmonicMeanOfSpeedups(l.speedups);
            t.addRow({first ? pr.label() : "",
                      l.targetF == 0 ? "0"
                                     : TextTable::num(l.targetF, 2),
                      TextTable::num(l.fairness, 3),
                      TextTable::num(l.run.ipcTotal, 3),
                      TextTable::num(ws, 3), TextTable::num(hm, 3)});
            first = false;
        }
        // How much does weighted speedup move from F=0 to F=1?
        const double ws0 =
            core::weightedSpeedup(pr.level(0.0).speedups);
        const double ws1 =
            core::weightedSpeedup(pr.level(1.0).speedups);
        wsDelta.push_back(ws0 > 0 ? (ws1 - ws0) / ws0 : 0.0);
        hmAtF0.push_back(
            core::harmonicMeanOfSpeedups(pr.level(0.0).speedups));
    }
    t.print(std::cout);

    auto wsStats = core::meanStd(wsDelta);
    std::cout << "\nWeighted speedup changes by only "
              << TextTable::num(100.0 * wsStats.mean, 1)
              << "% (mean) between F = 0 and F = 1, even though "
              << "fairness moves from ~0.03\nto ~0.8 on the unfair "
              << "pairs: a scheduler optimizing WS alone would "
              << "barely\nnotice starvation. The harmonic mean does "
              << "react, but one number cannot say\nwhether a drop "
              << "came from unfairness or from lost throughput — "
              << "which is why\nthe paper reports (fairness, IPC) "
              << "as two separate metrics.\n";
    return 0;
}
