#include "perf_scenarios.hh"

#include <chrono>

namespace soefair
{
namespace bench
{

workload::Profile
missHeavyProfile()
{
    workload::Profile p;
    p.name = "pchase";
    // Tiny, straight-line code footprint: the I-side must never be
    // the stall source in this scenario.
    p.code = {64, 6, 10, 0.30, 0.0};
    workload::Phase ph;
    ph.wIntAlu = 0.15;
    ph.wLoad = 1.0;
    ph.wStore = 0.0;
    // Near-total serialization: each load depends on its
    // predecessor, so misses cannot overlap.
    ph.depGeoP = 0.85;
    ph.depNone = 0.02;
    ph.hotBytes = 4 * 1024;
    ph.chaseBytes = 256ull * 1024 * 1024;
    ph.wRegion[unsigned(workload::RegionKind::Hot)] = 0.05;
    ph.wRegion[unsigned(workload::RegionKind::Stream)] = 0.0;
    ph.wRegion[unsigned(workload::RegionKind::Strided)] = 0.0;
    ph.wRegion[unsigned(workload::RegionKind::Chase)] = 1.0;
    p.phases = {ph};
    return p;
}

std::vector<harness::ThreadSpec>
lowMissPair()
{
    return {harness::ThreadSpec::benchmark("gcc", 1),
            harness::ThreadSpec::benchmark("eon", 2)};
}

std::vector<harness::ThreadSpec>
highMissPair()
{
    return {harness::ThreadSpec::benchmark("mcf", 1),
            harness::ThreadSpec::benchmark("swim", 2)};
}

std::vector<harness::ThreadSpec>
missHeavySingle()
{
    harness::ThreadSpec s;
    s.profile = missHeavyProfile();
    s.seed = 1;
    return {s};
}

SoeSim::SoeSim(const std::vector<harness::ThreadSpec> &specs,
               bool fast_forward)
    : mc(harness::MachineConfig::benchDefault()),
      sys(mc, specs),
      eng(mc.soe, pol, unsigned(specs.size()), &sys.stats()),
      numThreads(specs.size())
{
    sys.setFastForward(fast_forward);
    sys.warmCaches(20 * 1000);
    sys.start(&eng);
}

std::uint64_t
SoeSim::retiredTotal()
{
    std::uint64_t n = 0;
    for (std::size_t t = 0; t < numThreads; ++t)
        n += sys.core().retired(ThreadID(t));
    return n;
}

void
SoeSim::run(std::uint64_t instrs)
{
    const std::uint64_t target = retiredTotal() + instrs;
    while (retiredTotal() < target)
        sys.step(1000);
}

ScenarioResult
measureScenario(SoeSim &sim, std::uint64_t instrs)
{
    sim.run(instrs / 10 + 1000); // untimed warm prefix

    const auto t0 = std::chrono::steady_clock::now();
    sim.run(instrs);
    const auto t1 = std::chrono::steady_clock::now();

    ScenarioResult r;
    r.instrs = instrs;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (r.seconds > 0.0)
        r.instrsPerSec = double(instrs) / r.seconds;
    const harness::System &sys = sim.system();
    if (sys.now() > 0) {
        r.skippedFrac = double(sys.fastForwardCycles()) /
                        double(sys.now());
    }
    return r;
}

} // namespace bench
} // namespace soefair
