/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own
 * performance: workload generation, cache access, branch
 * prediction, the analytic model, and end-to-end simulated
 * instructions per second.
 */

#include <benchmark/benchmark.h>

#include "core/analytic.hh"
#include "cpu/branch_predictor.hh"
#include "harness/machine_config.hh"
#include "harness/system.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "soe/engine.hh"
#include "soe/policies.hh"
#include "workload/generator.hh"

#include "perf_scenarios.hh"

using namespace soefair;

static void
BM_WorkloadGeneration(benchmark::State &state)
{
    workload::WorkloadGenerator gen(workload::spec::byName("gcc"), 0,
                                    1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

static void
BM_CacheHit(benchmark::State &state)
{
    statistics::Group root("b");
    mem::Bus bus(4, &root);
    mem::Memory memory(281, bus, &root);
    EventQueue events;
    mem::Cache cache({"c", 32 * 1024, 8, 3, 8}, memory, events, &root);
    cache.warmTouch(0x1000, false);
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(mem::MemReq{0x1000, false, false, ++t, 0}));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CacheHit);

static void
BM_CacheMissPath(benchmark::State &state)
{
    statistics::Group root("b");
    mem::Bus bus(4, &root);
    mem::Memory memory(281, bus, &root);
    EventQueue events;
    mem::Cache cache({"c", 32 * 1024, 8, 3, 8}, memory, events, &root);
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        t += 400;
        a += 64 * 64; // new set each time
        events.runUntil(t);
        benchmark::DoNotOptimize(
            cache.access(mem::MemReq{a, false, false, t, 0}));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CacheMissPath);

static void
BM_BranchPredict(benchmark::State &state)
{
    statistics::Group root("b");
    cpu::BranchPredictor bp({16384, 12, 4096, 4}, &root);
    isa::MicroOp op;
    op.op = isa::OpClass::BranchCond;
    op.pc = 0x4000;
    op.taken = true;
    op.target = 0x5000;
    for (auto _ : state) {
        auto p = bp.predict(op);
        benchmark::DoNotOptimize(bp.update(op, p));
        op.pc = (op.pc + 4) & 0xFFFF;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_BranchPredict);

static void
BM_AnalyticQuota(benchmark::State &state)
{
    core::AnalyticSoe m({core::ThreadModel::fromIpcNoMiss(2.5, 15000),
                         core::ThreadModel::fromIpcNoMiss(2.5, 1000)},
                        core::MachineModel{300, 25});
    for (auto _ : state)
        benchmark::DoNotOptimize(m.quotasForFairness(0.5));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_AnalyticQuota);

/** End-to-end simulation speed in simulated uops/second. */
static void
BM_SimulatedUopsPerSecond(benchmark::State &state)
{
    using namespace harness;
    auto mc = MachineConfig::benchDefault();
    System sys(mc, {ThreadSpec::benchmark("gcc", 1),
                    ThreadSpec::benchmark("eon", 2)});
    sys.warmCaches(50 * 1000);
    static soe::MissOnlyPolicy pol;
    soe::SoeEngine eng(mc.soe, pol, 2, &sys.stats());
    sys.start(&eng);
    std::uint64_t before = 0;
    for (auto _ : state) {
        sys.step(1000);
    }
    const std::uint64_t retired =
        sys.core().retired(0) + sys.core().retired(1) - before;
    state.SetItemsProcessed(std::int64_t(retired));
}
BENCHMARK(BM_SimulatedUopsPerSecond)->Unit(benchmark::kMillisecond);

/**
 * End-to-end SOE scenarios from perf_scenarios: the low/high miss
 * pairs bracket the realistic envelope, and the miss-heavy
 * fast-forward on/off pair makes the stall-skipping speedup directly
 * visible in the report (compare their items/sec).
 */
static void
BM_SoeScenario(benchmark::State &state,
               std::vector<harness::ThreadSpec> specs,
               bool fast_forward)
{
    bench::SoeSim sim(std::move(specs), fast_forward);
    sim.run(1000); // untimed warm prefix
    const std::uint64_t before = sim.retiredTotal();
    for (auto _ : state)
        sim.run(1000);
    state.SetItemsProcessed(
        std::int64_t(sim.retiredTotal() - before));
}

static void
BM_SoeEndToEndLowMiss(benchmark::State &state)
{
    BM_SoeScenario(state, bench::lowMissPair(), true);
}
BENCHMARK(BM_SoeEndToEndLowMiss)->Unit(benchmark::kMillisecond);

static void
BM_SoeEndToEndHighMiss(benchmark::State &state)
{
    BM_SoeScenario(state, bench::highMissPair(), true);
}
BENCHMARK(BM_SoeEndToEndHighMiss)->Unit(benchmark::kMillisecond);

static void
BM_MissHeavyFastForwardOn(benchmark::State &state)
{
    BM_SoeScenario(state, bench::missHeavySingle(), true);
}
BENCHMARK(BM_MissHeavyFastForwardOn)->Unit(benchmark::kMillisecond);

static void
BM_MissHeavyFastForwardOff(benchmark::State &state)
{
    BM_SoeScenario(state, bench::missHeavySingle(), false);
}
BENCHMARK(BM_MissHeavyFastForwardOff)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
