/**
 * @file
 * Ablation: hardware prefetching vs SOE.
 *
 * The paper's machine has no prefetcher; its only prefetching effect
 * is overlapped misses surviving a thread switch (footnote 5). This
 * ablation adds a stride prefetcher into the L2 and runs a streaming
 * pair: prefetching removes last-level misses, which (a) raises
 * single-thread IPC, (b) removes SOE switch opportunities and the
 * stall time SOE hides, so the SOE speedup over single-thread
 * shrinks, and (c) does NOT repair fairness — the starved thread
 * still loses its (fewer) switch opportunities to the resident one,
 * so enforcement remains necessary.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("swim", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    std::cout << "Ablation: stride prefetcher into the L2 "
              << "(swim:eon, F = 0)\n\n";
    TextTable t({"prefetcher", "ST ipc swim", "switch events",
                 "ipc total", "speedup/ST", "fairness"});

    for (bool pf : {false, true}) {
        MachineConfig mc = MachineConfig::benchDefault();
        mc.mem.prefetch.enabled = pf;
        mc.mem.prefetch.degree = 4;
        Runner runner(mc);
        std::cerr << "[pf] prefetcher=" << pf << " references...\n";
        auto stA = runner.runSingleThread(specs[0], rc);
        auto stB = runner.runSingleThread(specs[1], rc);
        std::cerr << "[pf] prefetcher=" << pf << " SOE...\n";
        soe::MissOnlyPolicy pol;
        auto res = runner.runSoe(specs, pol, rc);
        const double fair = core::fairnessOfSpeedups(
            {res.threads[0].ipc / stA.ipc,
             res.threads[1].ipc / stB.ipc});
        const double stMean = 0.5 * (stA.ipc + stB.ipc);
        t.addRow({pf ? "on (degree 4)" : "off (paper machine)",
                  TextTable::num(stA.ipc, 3),
                  std::to_string(res.switchesMiss),
                  TextTable::num(res.ipcTotal, 3),
                  TextTable::num(res.ipcTotal / stMean, 3),
                  TextTable::num(fair, 3)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: prefetching raises swim's "
              << "single-thread IPC and removes\nswitch events; the "
              << "SOE gain over single thread shrinks (less stall "
              << "left to\nhide). F = 0 fairness stays poor: fewer "
              << "misses do not help the starved\nthread, so the "
              << "enforcement mechanism remains necessary.\n";
    return 0;
}
