/**
 * @file
 * Regenerates paper Figure 6: SOE throughput (IPC_SOE stacked per
 * thread) for every benchmark pair at F = 0, 1/4, 1/2 and 1, plus
 * the single-thread IPC of both threads — and the headline average
 * SOE speedup over single thread per enforcement level (paper: 24%,
 * 21%, 19%, 15%).
 */

#include <iostream>

#include "eval_common.hh"
#include "harness/table.hh"

using namespace soefair;
using namespace soefair::bench;
using harness::TextTable;

int
main()
{
    auto data = evaluationData();
    const auto &results = data.pairs;

    std::cout << "Figure 6: throughput of the benchmark pairs "
              << "(IPC of thread A + thread B = total)\n\n";

    TextTable t({"pair", "ipcST_A", "ipcST_B", "F", "ipcA", "ipcB",
                 "ipcSOE", "speedup/ST"});
    for (const auto &m : data.missing)
        t.addSpanRow(m.marker());
    std::vector<double> speedupSums(levels().size(), 0.0);

    for (const auto &pr : results) {
        bool first = true;
        for (std::size_t li = 0; li < pr.levels.size(); ++li) {
            const auto &l = pr.levels[li];
            speedupSums[li] += l.speedupOverSt;
            t.addRow({first ? pr.label() : "",
                      first ? TextTable::num(pr.stA.ipc, 3) : "",
                      first ? TextTable::num(pr.stB.ipc, 3) : "",
                      l.targetF == 0 ? "0" : TextTable::num(l.targetF, 2),
                      TextTable::num(l.run.threads[0].ipc, 3),
                      TextTable::num(l.run.threads[1].ipc, 3),
                      TextTable::num(l.run.ipcTotal, 3),
                      TextTable::num(l.speedupOverSt, 3)});
            first = false;
        }
    }
    t.print(std::cout);

    std::cout << "\nAverage SOE speedup over single thread:\n";
    TextTable avg({"F", "avg speedup", "paper"});
    const char *paperVals[] = {"1.24", "1.21", "1.19", "1.15"};
    auto ls = levels();
    for (std::size_t li = 0; li < ls.size(); ++li) {
        avg.addRow({ls[li] == 0 ? "0" : TextTable::num(ls[li], 2),
                    results.empty()
                        ? "-"
                        : TextTable::num(speedupSums[li] /
                                             double(results.size()),
                                         3),
                    paperVals[li]});
    }
    avg.print(std::cout);
    return 0;
}
