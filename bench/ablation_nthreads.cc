/**
 * @file
 * Ablation: thread count. Eickemeyer et al. (cited in the paper's
 * related work) found SOE reaches its maximum throughput around
 * three threads: with enough threads every miss stall is hidden and
 * extra contexts only add cache pressure. This sweep runs 1-4
 * streaming threads and reports throughput and fairness at F = 0
 * and F = 1/2.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    // Fewer instructions per thread as the count grows, to bound
    // runtime.
    rc.measureInstrs = rc.measureInstrs / 2;

    const char *benches[] = {"mcf", "art", "swim", "applu"};
    MachineConfig mc = MachineConfig::benchDefault();
    Runner runner(mc);

    std::cout << "Ablation: SOE throughput vs thread count "
              << "(miss-bound threads, F = 0 and F = 1/2)\n\n";
    TextTable t({"threads", "ipc F=0", "speedup/1T", "fairness F=0",
                 "ipc F=1/2", "fairness F=1/2"});

    std::cerr << "[nthreads] single-thread reference...\n";
    auto st1 = runner.runSingleThread(
        ThreadSpec::benchmark(benches[0], pairSeed(0)), rc);

    for (unsigned n = 2; n <= 4; ++n) {
        std::vector<ThreadSpec> specs;
        std::vector<StRunResult> sts;
        for (unsigned i = 0; i < n; ++i) {
            specs.push_back(
                ThreadSpec::benchmark(benches[i], pairSeed(i)));
            std::cerr << "[nthreads] ST " << benches[i] << "...\n";
            sts.push_back(runner.runSingleThread(specs.back(), rc));
        }

        std::cerr << "[nthreads] SOE " << n << " threads, F=0...\n";
        soe::MissOnlyPolicy base;
        auto res0 = runner.runSoe(specs, base, rc);
        std::cerr << "[nthreads] SOE " << n
                  << " threads, F=1/2...\n";
        soe::FairnessPolicy fair(0.5, mc.soe.missLatency, n);
        auto resF = runner.runSoe(specs, fair, rc);

        auto fairnessOf = [&](const SoeRunResult &r) {
            std::vector<double> sp;
            for (unsigned i = 0; i < n; ++i)
                sp.push_back(r.threads[i].ipc / sts[i].ipc);
            return core::fairnessOfSpeedups(sp);
        };

        t.addRow({std::to_string(n),
                  TextTable::num(res0.ipcTotal, 3),
                  TextTable::num(res0.ipcTotal / st1.ipc, 2),
                  TextTable::num(fairnessOf(res0), 3),
                  TextTable::num(resF.ipcTotal, 3),
                  TextTable::num(fairnessOf(resF), 3)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: with heavily stalled threads "
              << "(pointer chasing, thrashing),\nthroughput keeps "
              << "rising to 3 threads (Eickemeyer et al.'s "
              << "observation) and\nflattens or dips at 4 as cache "
              << "and bus contention take over.\n";
    return 0;
}
