/**
 * @file
 * Regenerates paper Figure 7: SOE throughput degradation due to
 * fairness enforcement (normalized to F = 0) together with the
 * number of forced thread switches per 1000 cycles — and the
 * headline average degradation (paper: 2.2%, 3.7% and 7.2% for
 * F = 1/4, 1/2 and 1).
 */

#include <iostream>

#include "eval_common.hh"
#include "harness/table.hh"

using namespace soefair;
using namespace soefair::bench;
using harness::TextTable;

int
main()
{
    auto data = evaluationData();
    const auto &results = data.pairs;

    std::cout << "Figure 7: throughput degradation and forced "
              << "switches per 1000 cycles\n(throughput normalized "
              << "to the F = 0 run of the same pair)\n\n";

    TextTable t({"pair", "F", "norm throughput", "forced/1kcyc"});
    for (const auto &m : data.missing)
        t.addSpanRow(m.marker());
    std::vector<double> normSums(levels().size(), 0.0);

    for (const auto &pr : results) {
        const double base = pr.level(0.0).run.ipcTotal;
        bool first = true;
        for (std::size_t li = 0; li < pr.levels.size(); ++li) {
            const auto &l = pr.levels[li];
            const double norm = l.run.ipcTotal / base;
            normSums[li] += norm;
            const double forcedRate = l.run.cycles
                ? 1000.0 * double(l.run.switchesForced) /
                    double(l.run.cycles)
                : 0.0;
            t.addRow({first ? pr.label() : "",
                      l.targetF == 0 ? "0"
                                     : TextTable::num(l.targetF, 2),
                      TextTable::num(norm, 4),
                      TextTable::num(forcedRate, 2)});
            first = false;
        }
    }
    t.print(std::cout);

    std::cout << "\nAverage throughput degradation vs F = 0:\n";
    TextTable avg({"F", "avg norm", "degradation %", "paper %"});
    const char *paperVals[] = {"0.0", "2.2", "3.7", "7.2"};
    auto ls = levels();
    for (std::size_t li = 0; li < ls.size(); ++li) {
        const double mean = results.empty()
            ? 0.0
            : normSums[li] / double(results.size());
        avg.addRow({ls[li] == 0 ? "0" : TextTable::num(ls[li], 2),
                    TextTable::num(mean, 4),
                    TextTable::num(100.0 * (1.0 - mean), 1),
                    paperVals[li]});
    }
    avg.print(std::cout);

    std::cout << "\nShape checks vs the paper: degradation grows "
              << "monotonically with F; pairs with\nsimilar IPC_ST "
              << "(e.g. lucas:applu, homogeneous pairs) barely "
              << "degrade; pairs with\nvery different IPC_ST (e.g. "
              << "galgel:gcc) degrade the most; forced-switch rate\n"
              << "correlates with the throughput loss.\n";
    return 0;
}
