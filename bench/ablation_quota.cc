/**
 * @file
 * Ablation: the max-cycles residency quota (Section 4.1: must be
 * small enough that every thread runs in each delta window, large
 * enough that quota-forced switches stay rare). Runs a mostly
 * miss-free pair (eon:crafty) where the quota is the main rotation
 * mechanism.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    Runner stRunner(MachineConfig::benchDefault());
    std::cerr << "[quota] single-thread references...\n";
    auto stA = stRunner.runSingleThread(
        ThreadSpec::benchmark("eon", pairSeed(0)), rc);
    auto stB = stRunner.runSingleThread(
        ThreadSpec::benchmark("crafty", pairSeed(0)), rc);
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("eon", pairSeed(0)),
        ThreadSpec::benchmark("crafty", pairSeed(0))};

    std::cout << "Ablation: max-cycles residency quota (eon:crafty, "
              << "F = 0)\n\n";
    TextTable t({"quota", "quota switches", "fairness", "ipc total"});

    for (Tick quota : {Tick(5000), Tick(10000), Tick(25000),
                       Tick(50000)}) {
        MachineConfig mc = MachineConfig::paperDefault();
        mc.soe.delta = 4 * quota;
        mc.soe.maxCyclesQuota = quota;
        Runner runner(mc);
        std::cerr << "[quota] " << quota << "...\n";
        soe::MissOnlyPolicy pol;
        auto res = runner.runSoe(specs, pol, rc);
        const double fair = core::fairnessOfSpeedups(
            {res.threads[0].ipc / stA.ipc,
             res.threads[1].ipc / stB.ipc});
        t.addRow({std::to_string(quota),
                  std::to_string(res.switchesQuota),
                  TextTable::num(fair, 3),
                  TextTable::num(res.ipcTotal, 3)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: a smaller quota rotates miss-free "
              << "threads more often\n(slightly lower throughput, "
              << "more even time split); with the paper's 50k the\n"
              << "quota-forced switches are rare.\n";
    return 0;
}
