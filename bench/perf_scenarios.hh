/**
 * @file
 * Shared end-to-end performance scenarios for the microbench suite
 * (perf_microbench) and the machine-readable report (perf_report).
 *
 * The scenarios bracket the simulator's speed envelope:
 *
 *  - low miss:  gcc+eon SOE pair — nearly every cycle does pipeline
 *    work, so fast-forward has little to skip;
 *  - high miss: mcf+swim SOE pair — the paper's miss-bound regime,
 *    where switch-on-event itself hides much of the stall time;
 *  - miss-heavy: a synthetic serial pointer chase (missHeavyProfile)
 *    whose IPC is a few thousandths — ~99% of simulated cycles are
 *    provably quiescent stalls, the case the fast-forward engine
 *    exists for. Its ff-on/ff-off ratio is the repo's headline
 *    speedup number and is machine-independent.
 */

#ifndef SOEFAIR_BENCH_PERF_SCENARIOS_HH
#define SOEFAIR_BENCH_PERF_SCENARIOS_HH

#include <cstdint>
#include <vector>

#include "harness/machine_config.hh"
#include "harness/system.hh"
#include "soe/engine.hh"
#include "soe/policies.hh"
#include "workload/profile.hh"

namespace soefair
{
namespace bench
{

/**
 * Serial pointer-chase profile: almost every instruction is a load
 * into a 256 MB chase region with near-total dependence on the
 * previous load, so execution is a chain of back-to-back memory
 * misses (~Miss_lat cycles apiece) with nothing to overlap.
 */
workload::Profile missHeavyProfile();

/** gcc+eon: cache-resident, high-IPC pair (fast-forward worst case). */
std::vector<harness::ThreadSpec> lowMissPair();

/** mcf+swim: the evaluation's miss-bound pairing. */
std::vector<harness::ThreadSpec> highMissPair();

/** One thread running missHeavyProfile() under the SOE engine. */
std::vector<harness::ThreadSpec> missHeavySingle();

/**
 * A ready-to-step SOE simulation over the bench machine config:
 * caches warmed, engine attached, threads started. Own one per
 * scenario; step it via run().
 */
class SoeSim
{
  public:
    SoeSim(const std::vector<harness::ThreadSpec> &specs,
           bool fast_forward);

    /** Step until `instrs` more instructions have retired. */
    void run(std::uint64_t instrs);

    std::uint64_t retiredTotal();

    harness::System &system() { return sys; }

  private:
    harness::MachineConfig mc;
    harness::System sys;
    soe::MissOnlyPolicy pol;
    soe::SoeEngine eng;
    std::size_t numThreads;
};

/** One timed measurement of a scenario. */
struct ScenarioResult
{
    std::uint64_t instrs = 0;  ///< instructions retired while timed
    double seconds = 0.0;      ///< wall time of the timed window
    double instrsPerSec = 0.0;
    /** Fraction of all simulated cycles covered by fast-forward. */
    double skippedFrac = 0.0;
};

/**
 * Time `instrs` instructions of an already-warmed simulation
 * (run a short untimed prefix first to keep JIT-ish cold effects —
 * page faults, branch history — out of the window).
 */
ScenarioResult measureScenario(SoeSim &sim, std::uint64_t instrs);

} // namespace bench
} // namespace soefair

#endif // SOEFAIR_BENCH_PERF_SCENARIOS_HH
