/**
 * @file
 * Regenerates paper Table 2: the worked two-thread example of
 * fairness enforcement, from the analytical model.
 *
 * Setup (paper Example 2): both threads run at IPC_no_miss = 2.5;
 * memory access latency 300 cycles; switch latency 25 cycles;
 * thread 1 misses every 15,000 instructions, thread 2 every 1,000.
 */

#include <iostream>

#include "core/analytic.hh"
#include "core/metrics.hh"
#include "harness/table.hh"

using namespace soefair;
using namespace soefair::core;
using harness::TextTable;

int
main()
{
    AnalyticSoe model({ThreadModel::fromIpcNoMiss(2.5, 15000.0),
                       ThreadModel::fromIpcNoMiss(2.5, 1000.0)},
                      MachineModel{300.0, 25.0});

    std::cout <<
        "Table 2: two-thread SOE with and without fairness "
        "enforcement\n"
        "(IPC_no_miss = [2.5, 2.5], IPM = [15000, 1000], "
        "Miss_lat = 300, Switch_lat = 25)\n\n";

    TextTable t({"F", "thread", "IPSw", "IPC_ST", "IPC_SOE",
                 "speedup", "slowdown x", "fairness"});

    for (double f : {0.0, 0.5, 1.0}) {
        auto quotas = model.quotasForFairness(f);
        std::vector<double> speedups;
        for (std::size_t j = 0; j < 2; ++j) {
            speedups.push_back(model.ipcSoe(j, quotas) /
                               model.ipcSingleThread(j));
        }
        const double fairness = fairnessOfSpeedups(speedups);
        for (std::size_t j = 0; j < 2; ++j) {
            t.addRow({f == 0.0 ? "0 (off)" : TextTable::num(f, 2),
                      std::to_string(j + 1),
                      TextTable::num(quotas[j], 0),
                      TextTable::num(model.ipcSingleThread(j), 3),
                      TextTable::num(model.ipcSoe(j, quotas), 3),
                      TextTable::num(speedups[j], 3),
                      TextTable::num(1.0 / speedups[j], 2),
                      j == 0 ? TextTable::num(fairness, 3) : ""});
        }
    }
    t.print(std::cout);

    std::cout <<
        "\nPaper reference points: at F=0 thread 1 slows by ~1.02x "
        "and thread 2 by ~9.2x\n(fairness 0.11); at F=1 thread 1 is "
        "forced to switch every ~1,667 instructions\nand both "
        "speedups equalize at ~0.63 (slowdown 1.59x).\n";
    return 0;
}
