/**
 * @file
 * Ablation of the Section 6 extension: "L1 misses (which may hit or
 * miss the L2 cache) can cause a thread switch to hide L1 miss
 * latency."
 *
 * Compares default (L2-only) switching against switch-on-L1-miss on
 * a pair whose working sets miss the L1 but mostly hit the L2
 * (bzip2:vortex). On this machine an L1 miss costs ~15 cycles while
 * a switch costs ~25, so the extension is expected to LOSE
 * throughput here — quantifying when the paper's suggestion pays
 * off is the point of the ablation.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("bzip2", pairSeed(0)),
        ThreadSpec::benchmark("vortex", pairSeed(0))};

    std::cout << "Ablation: switch-on-L1-miss (bzip2:vortex; L1-miss"
              << " latency ~15 cycles,\nswitch cost ~25 cycles)\n\n";
    TextTable t({"mode", "switch events", "ipc total", "fairness"});

    Runner stRunner(MachineConfig::benchDefault());
    std::cerr << "[l1sw] single-thread references...\n";
    auto stA = stRunner.runSingleThread(specs[0], rc);
    auto stB = stRunner.runSingleThread(specs[1], rc);

    for (bool l1 : {false, true}) {
        MachineConfig mc = MachineConfig::benchDefault();
        mc.soe.switchOnL1Miss = l1;
        Runner runner(mc);
        std::cerr << "[l1sw] switchOnL1Miss=" << l1 << "...\n";
        soe::MissOnlyPolicy pol;
        auto res = runner.runSoe(specs, pol, rc);
        const double fair = core::fairnessOfSpeedups(
            {res.threads[0].ipc / stA.ipc,
             res.threads[1].ipc / stB.ipc});
        t.addRow({l1 ? "L1+L2 switching" : "L2 only (paper default)",
                  std::to_string(res.switchesMiss),
                  TextTable::num(res.ipcTotal, 3),
                  TextTable::num(fair, 3)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: L1 switching multiplies the "
              << "switch count; since the hidden\nlatency (~15 "
              << "cycles) is below the switch cost (~25), throughput "
              << "drops — the\nextension only pays off for events "
              << "longer than Switch_lat.\n";
    return 0;
}
