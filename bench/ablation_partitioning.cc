/**
 * @file
 * Validates the paper's argument (Sections 1.1 and 6) that SMT-style
 * resource partitioning does not help SOE fairness: "SOE maintains a
 * single active thread in the pipeline. Hence, resource partitioning
 * will not improve fairness."
 *
 * Static partitioning on an SOE core means each thread sees half of
 * every pipeline structure while the other half sits idle. We run
 * the canonical unfair pair on the full machine and on a
 * half-structures machine: fairness stays as bad (the active thread
 * still runs until its miss), and throughput only drops. The
 * mechanism at F=1/2 on the full machine dominates both.
 */

#include <iostream>

#include "core/metrics.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

namespace
{

MachineConfig
halved()
{
    MachineConfig mc = MachineConfig::benchDefault();
    mc.core.robEntries /= 2;
    mc.core.iqEntries /= 2;
    mc.core.lqEntries /= 2;
    mc.core.sqEntries /= 2;
    mc.core.sbEntries /= 2;
    return mc;
}

} // namespace

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("gcc", pairSeed(0)),
        ThreadSpec::benchmark("eon", pairSeed(0))};

    std::cout << "Ablation: SMT-style static resource partitioning "
              << "on an SOE core (gcc:eon)\n\n";
    TextTable t({"configuration", "ipc total", "fairness"});

    auto addRow = [&](const char *label, const MachineConfig &mc,
                      soe::SchedulingPolicy &policy) {
        Runner runner(mc);
        std::cerr << "[part] " << label << " references...\n";
        auto stA = runner.runSingleThread(specs[0], rc);
        auto stB = runner.runSingleThread(specs[1], rc);
        std::cerr << "[part] " << label << " SOE...\n";
        auto res = runner.runSoe(specs, policy, rc);
        const double fair = core::fairnessOfSpeedups(
            {res.threads[0].ipc / stA.ipc,
             res.threads[1].ipc / stB.ipc});
        t.addRow({label, TextTable::num(res.ipcTotal, 3),
                  TextTable::num(fair, 3)});
    };

    soe::MissOnlyPolicy plainA;
    addRow("full structures, F=0", MachineConfig::benchDefault(),
           plainA);
    soe::MissOnlyPolicy plainB;
    addRow("halved structures (partitioned), F=0", halved(), plainB);
    soe::FairnessPolicy fairPol(0.5, 300.0, 2);
    addRow("full structures, mechanism F=1/2",
           MachineConfig::benchDefault(), fairPol);

    t.print(std::cout);
    std::cout << "\nExpected shape: partitioning leaves F=0 fairness "
              << "essentially unchanged (the\nactive thread still "
              << "monopolizes the core between its misses) while "
              << "costing\nthroughput; only the switch-point "
              << "mechanism moves fairness — the paper's\nargument "
              << "for handling SOE fairness at the architectural "
              << "level.\n";
    return 0;
}
