/**
 * @file
 * Ablation: thread-switch cost. The paper's drain-based switch
 * "usually accumulates to around 25 cycles"; this sweep varies the
 * drain/restart costs and reports the measured effective switch
 * latency and the throughput cost of enforcement at F = 1/2.
 */

#include <iostream>

#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "soe/policies.hh"

using namespace soefair;
using namespace soefair::harness;
using harness::TextTable;

int
main()
{
    RunConfig rc = RunConfig::fromEnv();
    const std::vector<ThreadSpec> specs = {
        ThreadSpec::benchmark("galgel", pairSeed(0)),
        ThreadSpec::benchmark("gcc", pairSeed(0))};

    std::cout << "Ablation: thread-switch cost (galgel:gcc)\n\n";
    TextTable t({"drain", "restart", "measured SwLat", "ipc F=0",
                 "ipc F=1/2", "degradation %"});

    struct Point { unsigned drain, restart; };
    for (Point p : {Point{2, 2}, Point{6, 8}, Point{12, 20},
                    Point{25, 40}}) {
        MachineConfig mc = MachineConfig::benchDefault();
        mc.core.drainCycles = p.drain;
        mc.core.switchRestartDelay = p.restart;
        Runner runner(mc);
        std::cerr << "[swlat] drain=" << p.drain << " restart="
                  << p.restart << "...\n";

        // Measure the effective switch latency directly.
        System sys(mc, specs);
        sys.warmCaches(rc.warmupInstrs);
        soe::MissOnlyPolicy probePol;
        soe::SoeEngine probe(mc.soe, probePol, 2, &sys.stats());
        sys.start(&probe);
        sys.step(200 * 1000);
        const double swLat = probe.switchLatency.mean();

        soe::MissOnlyPolicy base;
        auto res0 = runner.runSoe(specs, base, rc);
        soe::FairnessPolicy fair(0.5, mc.soe.missLatency, 2);
        auto resF = runner.runSoe(specs, fair, rc);

        t.addRow({std::to_string(p.drain), std::to_string(p.restart),
                  TextTable::num(swLat, 1),
                  TextTable::num(res0.ipcTotal, 3),
                  TextTable::num(resF.ipcTotal, 3),
                  TextTable::num(
                      100.0 * (1.0 - resF.ipcTotal / res0.ipcTotal),
                      1)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: the net effect of enforcement "
              << "shifts towards throughput loss\nas the switch "
              << "latency grows (every forced switch pays it without "
              << "hiding a\nstall); on pairs where enforcement "
              << "biases towards the faster thread the\neffect can "
              << "start positive (paper Fig. 3).\n";
    return 0;
}
