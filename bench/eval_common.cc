#include "eval_common.hh"

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "harness/env.hh"
#include "sim/errors.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace soefair
{
namespace bench
{

using namespace harness;

namespace
{

constexpr const char *cacheFile = "soefair_eval_cache.txt";
constexpr const char *journalFile = "soefair_eval_journal.jsonl";
constexpr const char *cacheVersion = "soefair-eval-v1";

std::string
configKey()
{
    const RunConfig rc = evalRunConfig();
    const MachineConfig mc = evalMachine();
    std::ostringstream os;
    os << cacheVersion << " measure=" << rc.measureInstrs
       << " warm=" << rc.warmupInstrs
       << " twarm=" << rc.timingWarmInstrs
       << " delta=" << mc.soe.delta
       << " quota=" << mc.soe.maxCyclesQuota;
    return os.str();
}

} // namespace

MachineConfig
evalMachine()
{
    return MachineConfig::benchDefault();
}

RunConfig
evalRunConfig()
{
    return RunConfig::fromEnv();
}

std::vector<double>
levels()
{
    return EvaluationSweep::standardLevels();
}

EvalData
evaluationData()
{
    EvalData data;
    if (loadPairResults(cacheFile, configKey(), data.pairs)) {
        std::cerr << "[eval] loaded cached sweep from " << cacheFile
                  << "\n";
        return data;
    }

    SweepCampaign campaign(evalMachine(), evalRunConfig(),
                           workload::spec::evaluationPairs(),
                           levels());

    // Resume a compatible journal left by an earlier driver (or a
    // killed run) so completed jobs — the single-thread baselines in
    // particular — are replayed instead of re-simulated.
    bool resume = false;
    if (std::ifstream(journalFile).good()) {
        try {
            const auto ids = campaign.jobIds();
            loadJournal(journalFile, campaign.journalKey(),
                        /*tolerate_torn_tail=*/true, &ids);
            resume = true;
            std::cerr << "[eval] resuming sweep from " << journalFile
                      << "\n";
        } catch (const SimError &e) {
            warn("ignoring incompatible eval journal: ", e.what());
        }
    }
    if (!resume) {
        std::cerr << "[eval] running the 16-pair evaluation sweep "
                  << "(journal: " << journalFile << ", cache: "
                  << cacheFile << ")...\n";
    }

    SupervisorConfig scfg;
    scfg.deadlineSeconds = 3600.0;
    scfg.progress = &std::cerr;
    scfg.jobSlots = env::resolveUnsigned(
        std::nullopt, "SOEFAIR_EVAL_JOBS", scfg.jobSlots);

    CampaignResult agg = campaign.run(scfg, journalFile, resume);

    // Figure drivers index every standard level, so only fully
    // complete pairs are safe to hand them.
    std::set<std::string> incomplete;
    for (const auto &m : agg.missing)
        incomplete.insert(m.pair);
    for (auto &pr : agg.results) {
        if (!incomplete.count(pr.label()))
            data.pairs.push_back(std::move(pr));
    }
    data.missing = std::move(agg.missing);

    if (data.complete()) {
        savePairResults(cacheFile, configKey(), data.pairs);
    } else {
        warn("evaluation sweep is PARTIAL (", data.missing.size(),
             " cell(s) missing); re-run to resume from ",
             journalFile);
    }
    return data;
}

std::vector<PairResult>
evaluationResults()
{
    EvalData data = evaluationData();
    for (const auto &m : data.missing)
        warn("evaluation gap: ", m.marker());
    return data.pairs;
}

} // namespace bench
} // namespace soefair
