#include "eval_common.hh"

#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"

namespace soefair
{
namespace bench
{

using namespace harness;

namespace
{

constexpr const char *cacheFile = "soefair_eval_cache.txt";
constexpr const char *cacheVersion = "soefair-eval-v1";

std::string
configKey()
{
    const RunConfig rc = evalRunConfig();
    const MachineConfig mc = evalMachine();
    std::ostringstream os;
    os << cacheVersion << " measure=" << rc.measureInstrs
       << " warm=" << rc.warmupInstrs
       << " twarm=" << rc.timingWarmInstrs
       << " delta=" << mc.soe.delta
       << " quota=" << mc.soe.maxCyclesQuota;
    return os.str();
}

} // namespace

MachineConfig
evalMachine()
{
    return MachineConfig::benchDefault();
}

RunConfig
evalRunConfig()
{
    return RunConfig::fromEnv();
}

std::vector<double>
levels()
{
    return EvaluationSweep::standardLevels();
}

std::vector<PairResult>
evaluationResults()
{
    std::vector<PairResult> results;
    if (loadPairResults(cacheFile, configKey(), results)) {
        std::cerr << "[eval] loaded cached sweep from " << cacheFile
                  << "\n";
        return results;
    }
    std::cerr << "[eval] running the 16-pair evaluation sweep "
              << "(cached to " << cacheFile << ")...\n";
    EvaluationSweep sweep(evalMachine(), evalRunConfig());
    results = sweep.runEvaluation(&std::cerr);
    savePairResults(cacheFile, configKey(), results);
    return results;
}

} // namespace bench
} // namespace soefair
