#include "eval_common.hh"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "harness/env.hh"
#include "harness/service/net/client.hh"
#include "harness/service/service.hh"
#include "sim/errors.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace soefair
{
namespace bench
{

using namespace harness;

namespace
{

constexpr const char *cacheVersion = "soefair-eval-v2";

/**
 * Directory holding every eval artifact (dataset cache, durable
 * queue, result cache). Defaults to build/ so the repo root stays
 * clean; SOEFAIR_EVAL_DIR relocates it (CI points it at scratch).
 */
std::string
evalDir()
{
    const std::string dir = env::getOr("SOEFAIR_EVAL_DIR", "build");
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
cachePath()
{
    return evalDir() + "/soefair_eval_cache.txt";
}

/**
 * Key guarding the assembled-dataset cache file. It embeds the
 * campaign's full configuration fingerprint (machine + run
 * parameters + pairs + levels), so *any* configuration change —
 * not just the handful of fields the v1 key sampled — invalidates
 * the cache instead of silently serving stale results.
 */
std::string
configKey(const SweepCampaign &campaign)
{
    return std::string(cacheVersion) + " " + campaign.journalKey();
}

} // namespace

MachineConfig
evalMachine()
{
    return MachineConfig::benchDefault();
}

RunConfig
evalRunConfig()
{
    return RunConfig::fromEnv();
}

std::vector<double>
levels()
{
    return EvaluationSweep::standardLevels();
}

namespace
{

/** Drain the campaign through the local durable job service. */
CampaignResult
drainLocally(const service::CampaignManifest &manifest,
             const std::string &cache_file)
{
    const std::string queueDir = evalDir() + "/soefair_eval_queue";
    const std::string resultCacheDir =
        evalDir() + "/soefair_eval_rcache";

    // Jobs live in a crash-safe queue and results in the verified
    // content-addressed cache, so a killed bench — or a second
    // figure driver — resumes and is served from the cache instead
    // of re-simulating.
    service::ServiceConfig cfg;
    cfg.queueDir = queueDir;
    cfg.cacheDir = resultCacheDir;
    cfg.workerName = "eval";
    cfg.deadlineSeconds = 3600.0;
    cfg.leaseSeconds = 300.0;
    cfg.progress = &std::cerr;
    cfg.slots = env::resolveUnsigned(std::nullopt,
                                     "SOEFAIR_EVAL_JOBS", cfg.slots);
    // Threaded drain (SOEFAIR_EVAL_THREADS=N): first attempts run
    // in-process, batched K per flock round; retries fall back to
    // the fork loop. Output is byte-identical either way.
    cfg.threads = env::resolveUnsigned(
        std::nullopt, "SOEFAIR_EVAL_THREADS", cfg.threads);
    cfg.batch = env::resolveUnsigned(std::nullopt,
                                     "SOEFAIR_EVAL_BATCH", cfg.batch);

    service::SweepService svc(cfg);
    try {
        svc.enqueueCampaign(manifest);
    } catch (const CheckpointError &e) {
        // A queue left by a different configuration (e.g. another
        // SOEFAIR_SCALE): its results are unusable here, so start
        // over. The result cache stays — it is content-addressed.
        warn("replacing incompatible eval queue '", queueDir,
             "': ", e.what());
        std::filesystem::remove_all(queueDir);
        svc.enqueueCampaign(manifest);
    }
    std::cerr << "[eval] draining the evaluation sweep (queue: "
              << queueDir << ", result cache: " << resultCacheDir
              << ", dataset cache: " << cache_file << ")...\n";
    svc.serve();
    return svc.aggregate();
}

/**
 * Opt-in remote mode (SOEFAIR_GATEWAY=unix:/path or tcp:host:port):
 * submit the campaign to a sweep gateway and stream its cells back.
 * The aggregate is byte-identical to the local drain by contract,
 * so the figure drivers cannot tell the difference.
 */
CampaignResult
drainViaGateway(const service::CampaignManifest &manifest,
                const std::string &server)
{
    service::net::ClientConfig cfg;
    cfg.server = server;
    cfg.tenant = env::getOr("SOEFAIR_TENANT", "eval");
    cfg.progress = &std::cerr;
    service::net::GatewayClient client(cfg);
    const service::net::SubmitReceipt receipt =
        client.submit(manifest);
    std::cerr << "[eval] streaming campaign " << receipt.key
              << " from " << server << "\n";
    return client.watch(manifest);
}

} // namespace

EvalData
evaluationData()
{
    service::CampaignManifest manifest;
    manifest.pairs = workload::spec::evaluationPairs();
    manifest.levels = levels();
    manifest.rc = evalRunConfig();

    SweepCampaign campaign = service::campaignFromManifest(manifest);

    EvalData data;
    const std::string cacheFile = cachePath();
    if (loadPairResults(cacheFile, configKey(campaign), data.pairs)) {
        std::cerr << "[eval] loaded cached sweep from " << cacheFile
                  << "\n";
        return data;
    }

    const std::string gateway = env::getOr("SOEFAIR_GATEWAY", "");
    CampaignResult agg = gateway.empty()
                             ? drainLocally(manifest, cacheFile)
                             : drainViaGateway(manifest, gateway);

    // Figure drivers index every standard level, so only fully
    // complete pairs are safe to hand them.
    std::set<std::string> incomplete;
    for (const auto &m : agg.missing)
        incomplete.insert(m.pair);
    for (auto &pr : agg.results) {
        if (!incomplete.count(pr.label()))
            data.pairs.push_back(std::move(pr));
    }
    data.missing = std::move(agg.missing);

    if (data.complete()) {
        savePairResults(cacheFile, configKey(campaign), data.pairs);
    } else {
        warn("evaluation sweep is PARTIAL (", data.missing.size(),
             " cell(s) missing); re-run to resume");
    }
    return data;
}

std::vector<PairResult>
evaluationResults()
{
    EvalData data = evaluationData();
    for (const auto &m : data.missing)
        warn("evaluation gap: ", m.marker());
    return data.pairs;
}

} // namespace bench
} // namespace soefair
