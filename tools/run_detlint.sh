#!/usr/bin/env bash
# Run detlint/soelint (determinism rules DET-001..004, CONC-001,
# fast-forward contracts FF-001/002, error-taxonomy contracts
# ERR-001..003, stats-determinism STAT-001/002 and the PDES
# ownership gate OWN-001/002 — see tools/detlint/README.md and
# docs/correctness.md) over the tree and diff the findings against
# the checked-in baseline (tools/detlint/baseline.txt).
#
#   tools/run_detlint.sh [--backend auto|text|libclang] [extra args]
#
# Useful extra args (passed straight through to detlint.py):
#   --fix                      rewrite mechanically fixable findings
#                              in place (DET-004 member initializers,
#                              missing SOE_THREAD_OWNED class tags —
#                              tagged with the `todo` placeholder,
#                              which OWN-002 keeps red until a human
#                              picks the real domain)
#   --json PATH                machine-readable findings report
#   --emit-ownership PATH      PDES ownership manifest (class ->
#                              sharding domain)
#   --update-baseline          rewrite the baseline from the scan
#
# Exit status (mirrors tools/run_lint.sh):
#   0  no findings beyond the baseline
#   1  new findings (printed)
#   2  setup failure (no python3, bad backend)
#
# The text backend needs only python3, so unlike the clang-tidy gate
# this one never skips: every environment that can run the tests can
# run detlint. To accept a finding as grandfathered, append its line
# to tools/detlint/baseline.txt. Prefer fixing over baselining.

set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
baseline="${repo_root}/tools/detlint/baseline.txt"

python_bin="${PYTHON:-python3}"
if ! command -v "${python_bin}" >/dev/null 2>&1; then
    echo "run_detlint: '${python_bin}' not found (set PYTHON)" >&2
    exit 2
fi

exec "${python_bin}" "${repo_root}/tools/detlint/detlint.py" \
    --root "${repo_root}" --baseline "${baseline}" "$@"
