#!/usr/bin/env bash
# Run clang-tidy over the repo's own sources (src/, tools/, bench/)
# using the compile database, and diff the findings against the
# checked-in baseline (tools/lint_baseline.txt).
#
#   tools/run_lint.sh [build-dir]
#
# Exit status:
#   0  no findings beyond the baseline (or clang-tidy unavailable —
#      reported, so CI images without the toolchain don't hard-fail
#      developer machines; CI installs clang-tidy and gets the gate)
#   1  new findings (printed), or setup failure
#
# To accept a finding as grandfathered, append its normalized line to
# tools/lint_baseline.txt. Prefer fixing over baselining.

set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build/release}"
baseline="${repo_root}/tools/lint_baseline.txt"

tidy_bin="${CLANG_TIDY:-}"
if [[ -n "${tidy_bin}" ]] && ! command -v "${tidy_bin}" \
        >/dev/null 2>&1; then
    echo "run_lint: CLANG_TIDY='${tidy_bin}' is not runnable" >&2
    exit 1
fi
if [[ -z "${tidy_bin}" ]]; then
    for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                clang-tidy-15 clang-tidy-14; do
        if command -v "${cand}" >/dev/null 2>&1; then
            tidy_bin="${cand}"
            break
        fi
    done
fi
if [[ -z "${tidy_bin}" ]]; then
    echo "run_lint: clang-tidy not found; skipping lint pass." >&2
    echo "run_lint: install clang-tidy (or set CLANG_TIDY) to run" \
         "the gate locally." >&2
    exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "run_lint: no compile database in ${build_dir}." >&2
    echo "run_lint: configure first, e.g.: cmake --preset release" >&2
    exit 1
fi

mapfile -t sources < <(cd "${repo_root}" &&
    find src tools bench -name '*.cc' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
    echo "run_lint: no sources found under src/ tools/ bench/" >&2
    exit 1
fi

echo "run_lint: ${tidy_bin} over ${#sources[@]} files" \
     "(database: ${build_dir})"

raw="$(mktemp)"
findings="$(mktemp)"
trap 'rm -f "${raw}" "${findings}"' EXIT

run_tidy() {
    (cd "${repo_root}" &&
        "${tidy_bin}" -p "${build_dir}" --quiet "$@" 2>/dev/null)
}

tidy_status=0
if command -v xargs >/dev/null 2>&1; then
    (cd "${repo_root}" && printf '%s\n' "${sources[@]}" |
        xargs -P "$(nproc)" -n 4 "${tidy_bin}" -p "${build_dir}" \
            --quiet 2>/dev/null) > "${raw}" || tidy_status=$?
else
    run_tidy "${sources[@]}" > "${raw}" || tidy_status=$?
fi
# clang-tidy exits 0 when it merely emits warnings; a nonzero status
# means the tool itself failed (bad compile command, crash). A gate
# that silently passes on tool failure is worse than no gate.
if [[ ${tidy_status} -ne 0 && ! -s "${raw}" ]]; then
    echo "run_lint: ${tidy_bin} failed (status ${tidy_status})" \
         "and produced no output; not treating as clean." >&2
    exit 1
fi

# Normalize: keep only warning/error lines, strip the absolute repo
# prefix and the column number so the baseline is stable across
# checkouts and minor formatting churn.
sed -n 's/^.*\/\(\(src\|tools\|bench\)\/[^:]*\):\([0-9]*\):[0-9]*: \(warning\|error\): /\1:\3: \4: /p' \
    "${raw}" | LC_ALL=C sort -u > "${findings}"

baseline_sorted="$(mktemp)"
trap 'rm -f "${raw}" "${findings}" "${baseline_sorted}"' EXIT
grep -v '^\s*#' "${baseline}" 2>/dev/null | grep -v '^\s*$' |
    LC_ALL=C sort -u > "${baseline_sorted}" || true

new_findings="$(LC_ALL=C comm -23 "${findings}" "${baseline_sorted}")"
fixed="$(LC_ALL=C comm -13 "${findings}" "${baseline_sorted}")"

if [[ -n "${fixed}" ]]; then
    echo "run_lint: baseline entries no longer reported (consider" \
         "removing from ${baseline#"${repo_root}"/}):"
    printf '  %s\n' ${fixed:+"${fixed}"} | sed 's/^  $//'
fi

if [[ -n "${new_findings}" ]]; then
    echo "run_lint: NEW findings not in the baseline:" >&2
    printf '%s\n' "${new_findings}" >&2
    echo "run_lint: fix them or (sparingly) append to" \
         "${baseline#"${repo_root}"/}" >&2
    exit 1
fi

echo "run_lint: clean ($(wc -l < "${findings}") findings, all" \
     "baselined)"
exit 0
