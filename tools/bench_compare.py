#!/usr/bin/env python3
"""Diff two BENCH_perf.json files from bench/perf_report.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.10]
                     [--min-ff-speedup X] [--min-thread-speedup X]

Exits non-zero when any benchmark present in both files regressed by
more than THRESHOLD (default 10%), or when a --min-* gate is given
and the current report's corresponding derived ratio is below X
(--min-ff-speedup gates derived.ff_speedup_miss_heavy,
--min-thread-speedup gates derived.thread_speedup_short_jobs).

Raw items/sec values only compare meaningfully on the same machine
and build type (the report embeds a machine fingerprint; a mismatch
is reported as a warning, not a failure, so CI can still apply a
generous threshold across runner generations). The derived ratios
are same-machine A/B comparisons and are machine-independent.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def main():
    ap = argparse.ArgumentParser(
        description="Compare two BENCH_perf.json files.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated fractional slowdown per "
                         "benchmark (default 0.10 = 10%%)")
    ap.add_argument("--min-ff-speedup", type=float, default=None,
                    help="fail unless the current report's "
                         "ff_speedup_miss_heavy is at least this")
    ap.add_argument("--min-thread-speedup", type=float, default=None,
                    help="fail unless the current report's "
                         "thread_speedup_short_jobs is at least this")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    bmachine = base.get("machine", {})
    cmachine = cur.get("machine", {})
    for key in ("os", "arch", "build", "audits"):
        if bmachine.get(key) != cmachine.get(key):
            print(f"warning: machine fingerprint differs on '{key}': "
                  f"{bmachine.get(key)!r} vs {cmachine.get(key)!r} — "
                  f"raw items/sec comparison is approximate",
                  file=sys.stderr)

    bbench = {b["name"]: b for b in base.get("benchmarks", [])}
    cbench = {b["name"]: b for b in cur.get("benchmarks", [])}

    failed = False
    for name in sorted(set(bbench) | set(cbench)):
        if name not in bbench:
            print(f"  {name}: new benchmark (no baseline)")
            continue
        if name not in cbench:
            print(f"warning: {name}: present in baseline only",
                  file=sys.stderr)
            continue
        old = bbench[name].get("items_per_sec", 0)
        new = cbench[name].get("items_per_sec", 0)
        if old <= 0:
            print(f"  {name}: baseline has no rate, skipped")
            continue
        ratio = new / old
        verdict = "ok"
        if ratio < 1.0 - args.threshold:
            verdict = "REGRESSION"
            failed = True
        print(f"  {name}: {old} -> {new} items/sec "
              f"({ratio:.2f}x) {verdict}")

    def check_min(key, minimum):
        """Gate one derived ratio; returns True when it fails."""
        if minimum is None:
            return False
        value = cur.get("derived", {}).get(key)
        if value is None:
            print(f"FAIL: current report has no derived.{key}",
                  file=sys.stderr)
            return True
        ok = value >= minimum
        print(f"  {key}: {value:.2f}x "
              f"(required >= {minimum:g}x) {'ok' if ok else 'FAIL'}")
        return not ok

    failed |= check_min("ff_speedup_miss_heavy", args.min_ff_speedup)
    failed |= check_min("thread_speedup_short_jobs",
                        args.min_thread_speedup)

    if failed:
        print("bench_compare: FAILED", file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
