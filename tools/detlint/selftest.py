#!/usr/bin/env python3
"""Self-test for detlint (tools/detlint/detlint.py).

Each rule has a known-bad fixture and a clean twin in
tools/detlint/fixtures/. The bad fixtures mark every seeded violation
with a ``// BAD`` comment; the golden expectation is derived from
those markers, so fixture and expectation cannot drift apart. The
fixtures are copied into a temporary tree at paths inside each rule's
scope (detlint scoping is path-based), then scanned with the text
backend — the one that must work everywhere, including containers
without clang. When libclang is importable the bad fixtures are
additionally cross-checked against the AST backend.

Run directly (``python3 tools/detlint/selftest.py``) or via ctest
(``detlint_selftest``).
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import detlint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

#: fixture file -> (destination inside the temp tree, rule the BAD
#: markers assert). Destinations sit inside the rule's path scope.
PLACEMENTS = {
    "det001_bad.cc": ("src/sim/det001_bad.cc", "DET-001"),
    "det001_clean.cc": ("src/sim/det001_clean.cc", "DET-001"),
    "det002_bad.cc": ("src/harness/det002_bad.cc", "DET-002"),
    "det002_clean.cc": ("src/harness/det002_clean.cc", "DET-002"),
    "det003_bad.cc": ("src/stats/det003_bad.cc", "DET-003"),
    "det003_clean.cc": ("src/stats/det003_clean.cc", "DET-003"),
    "det004_bad.hh": ("src/mem/det004_bad.hh", "DET-004"),
    "det004_clean.hh": ("src/mem/det004_clean.hh", "DET-004"),
    "conc001_bad.hh": ("src/sim/conc001_bad.hh", "CONC-001"),
    "conc001_clean.hh": ("src/sim/conc001_clean.hh", "CONC-001"),
}


def fixture_text(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return f.read()


def golden_lines(name):
    """Line numbers of every '// BAD' marker in a fixture."""
    return [lineno
            for lineno, line in enumerate(
                fixture_text(name).splitlines(), start=1)
            if "// BAD" in line]


class TreeFixture(unittest.TestCase):
    """Copies fixtures into a scoped temp tree once per class."""

    @classmethod
    def setUpClass(cls):
        cls.root = tempfile.mkdtemp(prefix="detlint_selftest_")
        for src, (dest, _rule) in PLACEMENTS.items():
            full = os.path.join(cls.root, dest)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            shutil.copyfile(os.path.join(FIXTURES, src), full)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.root, ignore_errors=True)

    def scan(self, relpath, backend="text"):
        return detlint.check_file(self.root, relpath, backend, None)


class BadFixturesFire(TreeFixture):
    """Every seeded violation produces exactly one finding of the
    fixture's rule, at the marked line, and nothing else."""

    def assert_golden(self, fixture, backend="text"):
        dest, rule = PLACEMENTS[fixture]
        findings = self.scan(dest, backend=backend)
        got = sorted((f.rule, f.line) for f in findings)
        want = sorted((rule, ln) for ln in golden_lines(fixture))
        self.assertEqual(
            got, want,
            f"{fixture} [{backend}]: findings do not match the "
            f"// BAD markers")

    def test_det001(self):
        self.assert_golden("det001_bad.cc")

    def test_det002(self):
        self.assert_golden("det002_bad.cc")

    def test_det003(self):
        self.assert_golden("det003_bad.cc")

    def test_det004(self):
        self.assert_golden("det004_bad.hh")

    def test_conc001(self):
        self.assert_golden("conc001_bad.hh")

    def test_bad_fixtures_have_markers(self):
        # A fixture with zero markers would make the tests above
        # vacuously assert "no findings" — guard against that.
        for fixture, (_dest, _rule) in PLACEMENTS.items():
            if "_bad." in fixture:
                self.assertGreaterEqual(
                    len(golden_lines(fixture)), 2,
                    f"{fixture}: expected at least 2 BAD markers")


class CleanTwinsStaySilent(TreeFixture):
    def test_clean_twins(self):
        for fixture, (dest, _rule) in PLACEMENTS.items():
            if "_clean." not in fixture:
                continue
            findings = self.scan(dest)
            self.assertEqual(
                [], [f.format() for f in findings],
                f"{fixture}: clean twin must produce no findings")


class ScopingAndSuppression(TreeFixture):
    def test_det002_whitelisted_accessor(self):
        # The same getenv-calling code is legal at the single
        # whitelisted path.
        dest = detlint.DET002_WHITELIST[0]
        full = os.path.join(self.root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        shutil.copyfile(
            os.path.join(FIXTURES, "det002_bad.cc"), full)
        self.assertEqual([], self.scan(dest))

    def test_det003_out_of_scope(self):
        # Unordered containers are only flagged in stats-feeding
        # code; the same file under src/cpu/ is out of scope.
        dest = "src/cpu/det003_elsewhere.cc"
        full = os.path.join(self.root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        shutil.copyfile(
            os.path.join(FIXTURES, "det003_bad.cc"), full)
        self.assertEqual([], self.scan(dest))

    def test_skip_file_directive(self):
        dest = "src/sim/det001_skipped.cc"
        full = os.path.join(self.root, dest)
        with open(full, "w", encoding="utf-8") as f:
            f.write("// detlint: skip-file\n"
                    + fixture_text("det001_bad.cc"))
        self.assertEqual([], self.scan(dest))

    def test_line_allow_directive(self):
        dest = "src/sim/det001_allowed.cc"
        full = os.path.join(self.root, dest)
        with open(full, "w", encoding="utf-8") as f:
            f.write("unsigned long s()\n"
                    "{\n"
                    "    return time(nullptr); // NOLINT(DET-001)\n"
                    "}\n")
        self.assertEqual([], self.scan(dest))

    def test_conc001_requires_optin(self):
        # The same partially-annotated class without the opt-in
        # directive: CONC-001 stays quiet (DET-004 still applies but
        # the fixture's members are initialized).
        text = fixture_text("conc001_bad.hh").replace(
            "// detlint: conc-optin", "//")
        dest = "src/sim/conc001_not_opted.hh"
        with open(os.path.join(self.root, dest), "w",
                  encoding="utf-8") as f:
            f.write(text)
        self.assertEqual([], self.scan(dest))


class BaselineGate(unittest.TestCase):
    """End-to-end through main(): new findings fail, baselined
    findings pass, stale baseline entries are reported but pass."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="detlint_gate_")
        dest = os.path.join(self.root, "src", "harness")
        os.makedirs(dest)
        shutil.copyfile(os.path.join(FIXTURES, "det002_bad.cc"),
                        os.path.join(dest, "det002_bad.cc"))
        self.baseline = os.path.join(self.root, "baseline.txt")

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def run_main(self, *extra):
        return detlint.main(["--root", self.root, "--backend", "text",
                             "--baseline", self.baseline, *extra])

    def test_new_findings_fail(self):
        self.assertEqual(1, self.run_main())

    def test_baselined_findings_pass(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        self.assertEqual(0, self.run_main())

    def test_stale_baseline_entries_still_pass(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        with open(self.baseline, "a", encoding="utf-8") as f:
            f.write("src/harness/gone.cc:1: DET-002: stale entry\n")
        self.assertEqual(0, self.run_main())

    def test_fixing_a_finding_keeps_passing(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        # "Fix" the file: drop the second getenv call.
        path = os.path.join(self.root, "src", "harness",
                            "det002_bad.cc")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        text = text.replace('v = getenv("SOEFAIR_FALLBACK");',
                            'v = "";')
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        self.assertEqual(0, self.run_main())


@unittest.skipUnless(detlint.libclang_available(),
                     "libclang python bindings not importable")
class LibclangCrossCheck(TreeFixture):
    """Best-effort AST backend must agree on the seeded call-site
    rules (DET-001/002/003 are token-identical across backends)."""

    def test_det001(self):
        BadFixturesFire.assert_golden(
            self, "det001_bad.cc", backend="libclang")

    def test_det002(self):
        BadFixturesFire.assert_golden(
            self, "det002_bad.cc", backend="libclang")


if __name__ == "__main__":
    unittest.main(verbosity=2)
