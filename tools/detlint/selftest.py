#!/usr/bin/env python3
"""Self-test for detlint (tools/detlint/detlint.py).

Each rule has a known-bad fixture and a clean twin in
tools/detlint/fixtures/. The bad fixtures mark every seeded violation
with a ``// BAD`` comment; the golden expectation is derived from
those markers, so fixture and expectation cannot drift apart. The
fixtures are copied into a temporary tree at paths inside each rule's
scope (detlint scoping is path-based), then scanned with the text
backend — the one that must work everywhere, including containers
without clang. When libclang is importable the bad fixtures are
additionally cross-checked against the AST backend.

Run directly (``python3 tools/detlint/selftest.py``) or via ctest
(``detlint_selftest``).
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import detlint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

#: fixture file -> (destination inside the temp tree, rule the BAD
#: markers assert). Destinations sit inside the rule's path scope.
PLACEMENTS = {
    "det001_bad.cc": ("src/sim/det001_bad.cc", "DET-001"),
    "det001_clean.cc": ("src/sim/det001_clean.cc", "DET-001"),
    "det002_bad.cc": ("src/harness/det002_bad.cc", "DET-002"),
    "det002_clean.cc": ("src/harness/det002_clean.cc", "DET-002"),
    "det003_bad.cc": ("src/stats/det003_bad.cc", "DET-003"),
    "det003_clean.cc": ("src/stats/det003_clean.cc", "DET-003"),
    # src/workload keeps DET-004 in scope without dragging in the
    # OWN-001 ownership gate (src/cpu|mem|soe only).
    "det004_bad.hh": ("src/workload/det004_bad.hh", "DET-004"),
    "det004_clean.hh": ("src/workload/det004_clean.hh", "DET-004"),
    "conc001_bad.hh": ("src/sim/conc001_bad.hh", "CONC-001"),
    "conc001_clean.hh": ("src/sim/conc001_clean.hh", "CONC-001"),
    "ff001_bad.hh": ("src/soe/ff001_bad.hh", "FF-001"),
    "ff001_clean.hh": ("src/soe/ff001_clean.hh", "FF-001"),
    "ff002_bad.cc": ("src/cpu/ff002_bad.cc", "FF-002"),
    "ff002_clean.cc": ("src/cpu/ff002_clean.cc", "FF-002"),
    "err001_bad.cc": ("src/core/err001_bad.cc", "ERR-001"),
    "err001_clean.cc": ("src/core/err001_clean.cc", "ERR-001"),
    "stat001_bad.cc": ("src/stats/stat001_bad.cc", "STAT-001"),
    "stat001_clean.cc": ("src/stats/stat001_clean.cc", "STAT-001"),
    "stat002_bad.cc": ("src/stats/stat002_bad.cc", "STAT-002"),
    "stat002_clean.cc": ("src/stats/stat002_clean.cc", "STAT-002"),
    "own001_bad.hh": ("src/mem/own001_bad.hh", "OWN-001"),
    "own001_clean.hh": ("src/mem/own001_clean.hh", "OWN-001"),
    "own002_bad.hh": ("src/mem/own002_bad.hh", "OWN-002"),
    "own002_clean.hh": ("src/mem/own002_clean.hh", "OWN-002"),
    "rawstring_bad.cc": ("src/sim/rawstring_bad.cc", "ERR-001"),
    "rawstring_clean.cc": ("src/sim/rawstring_clean.cc", "ERR-001"),
}


def fixture_text(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as f:
        return f.read()


def golden_lines(name):
    """Line numbers of every '// BAD' marker in a fixture."""
    return [lineno
            for lineno, line in enumerate(
                fixture_text(name).splitlines(), start=1)
            if "// BAD" in line]


class TreeFixture(unittest.TestCase):
    """Copies fixtures into a scoped temp tree once per class."""

    @classmethod
    def setUpClass(cls):
        cls.root = tempfile.mkdtemp(prefix="detlint_selftest_")
        for src, (dest, _rule) in PLACEMENTS.items():
            full = os.path.join(cls.root, dest)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            shutil.copyfile(os.path.join(FIXTURES, src), full)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.root, ignore_errors=True)

    def scan(self, relpath, backend="text"):
        return detlint.check_file(self.root, relpath, backend, None)


class BadFixturesFire(TreeFixture):
    """Every seeded violation produces exactly one finding of the
    fixture's rule, at the marked line, and nothing else."""

    def assert_golden(self, fixture, backend="text"):
        dest, rule = PLACEMENTS[fixture]
        findings = self.scan(dest, backend=backend)
        got = sorted((f.rule, f.line) for f in findings)
        want = sorted((rule, ln) for ln in golden_lines(fixture))
        self.assertEqual(
            got, want,
            f"{fixture} [{backend}]: findings do not match the "
            f"// BAD markers")

    def test_det001(self):
        self.assert_golden("det001_bad.cc")

    def test_det002(self):
        self.assert_golden("det002_bad.cc")

    def test_det003(self):
        self.assert_golden("det003_bad.cc")

    def test_det004(self):
        self.assert_golden("det004_bad.hh")

    def test_conc001(self):
        self.assert_golden("conc001_bad.hh")

    def test_ff001(self):
        self.assert_golden("ff001_bad.hh")

    def test_ff002(self):
        self.assert_golden("ff002_bad.cc")

    def test_err001(self):
        self.assert_golden("err001_bad.cc")

    def test_stat001(self):
        self.assert_golden("stat001_bad.cc")

    def test_stat002(self):
        self.assert_golden("stat002_bad.cc")

    def test_own001(self):
        self.assert_golden("own001_bad.hh")

    def test_own002(self):
        self.assert_golden("own002_bad.hh")

    def test_rawstring(self):
        # Raw string literals full of violation-looking text are
        # ignored; the real exit() after them is found at the
        # marked line.
        self.assert_golden("rawstring_bad.cc")

    def test_bad_fixtures_have_markers(self):
        # A fixture with zero markers would make the tests above
        # vacuously assert "no findings" — guard against that.
        for fixture, (_dest, _rule) in PLACEMENTS.items():
            if "_bad." in fixture:
                self.assertGreaterEqual(
                    len(golden_lines(fixture)), 1,
                    f"{fixture}: expected at least 1 BAD marker")


class CleanTwinsStaySilent(TreeFixture):
    def test_clean_twins(self):
        for fixture, (dest, _rule) in PLACEMENTS.items():
            if "_clean." not in fixture:
                continue
            findings = self.scan(dest)
            self.assertEqual(
                [], [f.format() for f in findings],
                f"{fixture}: clean twin must produce no findings")


class ScopingAndSuppression(TreeFixture):
    def test_det002_whitelisted_accessor(self):
        # The same getenv-calling code is legal at the single
        # whitelisted path.
        dest = detlint.DET002_WHITELIST[0]
        full = os.path.join(self.root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        shutil.copyfile(
            os.path.join(FIXTURES, "det002_bad.cc"), full)
        self.assertEqual([], self.scan(dest))

    def test_det003_out_of_scope(self):
        # Unordered containers are only flagged in stats-feeding
        # code; the same file under src/cpu/ is out of scope.
        dest = "src/cpu/det003_elsewhere.cc"
        full = os.path.join(self.root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        shutil.copyfile(
            os.path.join(FIXTURES, "det003_bad.cc"), full)
        self.assertEqual([], self.scan(dest))

    def test_skip_file_directive(self):
        dest = "src/sim/det001_skipped.cc"
        full = os.path.join(self.root, dest)
        with open(full, "w", encoding="utf-8") as f:
            f.write("// detlint: skip-file\n"
                    + fixture_text("det001_bad.cc"))
        self.assertEqual([], self.scan(dest))

    def test_line_allow_directive(self):
        dest = "src/sim/det001_allowed.cc"
        full = os.path.join(self.root, dest)
        with open(full, "w", encoding="utf-8") as f:
            f.write("unsigned long s()\n"
                    "{\n"
                    "    return time(nullptr); // NOLINT(DET-001)\n"
                    "}\n")
        self.assertEqual([], self.scan(dest))

    def test_conc001_requires_optin(self):
        # The same partially-annotated class without the opt-in
        # directive: CONC-001 stays quiet (DET-004 still applies but
        # the fixture's members are initialized).
        text = fixture_text("conc001_bad.hh").replace(
            "// detlint: conc-optin", "//")
        dest = "src/sim/conc001_not_opted.hh"
        with open(os.path.join(self.root, dest), "w",
                  encoding="utf-8") as f:
            f.write(text)
        self.assertEqual([], self.scan(dest))


def line_containing(text, needle):
    """1-based line number of the first line containing needle."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"no line contains {needle!r}")


#: fixture -> canonical destination for the cross-file (tree) rules.
#: ERR-002/ERR-003 anchor on these exact paths.
TREE_CLEAN = {
    "tree/errors_clean.hh": "src/sim/errors.hh",
    "tree/errors_clean.cc": "src/sim/errors.cc",
    "tree/cli_verbs_clean.cc": "src/harness/cli_verbs.cc",
    "tree/cli_main_clean.cc": "tools/soefair_cli.cc",
}
TREE_BAD = {
    "tree/errors_bad.hh": "src/sim/errors.hh",
    "tree/errors_clean.cc": "src/sim/errors.cc",
    "tree/raise_bad.cc": "src/harness/raise_bad.cc",
    "tree/cli_verbs_bad.cc": "src/harness/cli_verbs.cc",
    "tree/cli_main_bad.cc": "tools/soefair_cli.cc",
}


class TreeRules(unittest.TestCase):
    """ERR-002 / ERR-003: cross-file rules over miniature trees with
    the anchor files at their canonical paths."""

    def scan(self, mapping, edits=None):
        root = tempfile.mkdtemp(prefix="detlint_tree_")
        self.addCleanup(shutil.rmtree, root, ignore_errors=True)
        for src, dest in mapping.items():
            text = fixture_text(src)
            if edits and dest in edits:
                text = edits[dest](text)
            full = os.path.join(root, dest)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(text)
        findings, _records = detlint.scan_tree(
            root, sorted(mapping.values()), "text", None)
        return findings

    def test_clean_tree_is_silent(self):
        self.assertEqual(
            [], [f.format() for f in self.scan(TREE_CLEAN)])

    def test_bad_tree_fires_exactly_the_seeded_findings(self):
        hh = fixture_text("tree/errors_bad.hh")
        orphan = line_containing(hh, "class OrphanError")
        codeless = line_containing(hh, "class CodelessError")
        raise_line = line_containing(
            fixture_text("tree/raise_bad.cc"), "MythicalError")
        verbs = fixture_text("tree/cli_verbs_bad.cc")
        drain = line_containing(verbs, '"drain"')
        ghost = line_containing(verbs, '"ghost"')
        orphan_dispatch = line_containing(
            fixture_text("tree/cli_main_bad.cc"), 'cmd == "orphan"')
        want = sorted([
            # OrphanError: missing exitCode() AND kind-name mapping.
            ("src/sim/errors.hh", orphan, "ERR-002"),
            ("src/sim/errors.hh", orphan, "ERR-002"),
            ("src/sim/errors.hh", codeless, "ERR-002"),
            ("src/harness/raise_bad.cc", raise_line, "ERR-002"),
            ("src/harness/cli_verbs.cc", drain, "ERR-003"),
            ("src/harness/cli_verbs.cc", ghost, "ERR-003"),
            ("tools/soefair_cli.cc", orphan_dispatch, "ERR-003"),
        ])
        got = sorted(
            (f.path, f.line, f.rule) for f in self.scan(TREE_BAD))
        self.assertEqual(want, got)

    def test_deleting_a_doc_entry_fires_err003(self):
        # The acceptance demo: drop one verb's documented exit code
        # from the otherwise-clean registry and the cross-check
        # notices the now-undocumented reachable code.
        edits = {"src/harness/cli_verbs.cc":
                 lambda t: t.replace(
                     "; 22 admission control rejected", "")}
        findings = self.scan(TREE_CLEAN, edits)
        self.assertEqual(
            ["ERR-003"], [f.rule for f in findings])
        self.assertIn("exit with code 22", findings[0].message)
        self.assertIn("drain", findings[0].message)

    def test_deleting_a_kind_mapping_fires_err002(self):
        edits = {"src/sim/errors.cc":
                 lambda t: t.replace("case QuotaError::code:", "")}
        findings = self.scan(TREE_CLEAN, edits)
        self.assertEqual(["ERR-002"], [f.rule for f in findings])
        self.assertIn("QuotaError", findings[0].message)

    def test_deleting_a_credit_line_fires_ff002(self):
        # The fast-forward acceptance demo: remove one stall
        # counter's bulk-credit line from the clean fixture and
        # FF-002 fires at the counter's tick-path increment.
        root = tempfile.mkdtemp(prefix="detlint_ff002_")
        self.addCleanup(shutil.rmtree, root, ignore_errors=True)
        text = fixture_text("ff002_clean.cc")
        broken = "\n".join(
            line for line in text.splitlines()
            if "fullStallCycles += skipped;" not in line) + "\n"
        self.assertNotEqual(text, broken)
        dest = "src/cpu/ff002_widget.cc"
        full = os.path.join(root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(broken)
        findings = detlint.check_file(root, dest, "text", None)
        self.assertEqual(["FF-002"], [f.rule for f in findings])
        self.assertEqual(
            line_containing(broken, "fullStallCycles += 1;"),
            findings[0].line)


class CrlfRegression(unittest.TestCase):
    """CRLF line endings must not change what fires or where."""

    CASES = ("ff002_bad.cc", "err001_bad.cc", "det004_bad.hh",
             "rawstring_bad.cc")

    def test_crlf_findings_identical(self):
        for fixture in self.CASES:
            dest, rule = PLACEMENTS[fixture]
            root = tempfile.mkdtemp(prefix="detlint_crlf_")
            self.addCleanup(shutil.rmtree, root, ignore_errors=True)
            full = os.path.join(root, dest)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            crlf = fixture_text(fixture).replace("\n", "\r\n")
            with open(full, "w", encoding="utf-8", newline="") as f:
                f.write(crlf)
            findings = detlint.check_file(root, dest, "text", None)
            got = sorted((f.rule, f.line) for f in findings)
            want = sorted((rule, ln) for ln in golden_lines(fixture))
            self.assertEqual(
                want, got,
                f"{fixture}: CRLF version diverged from LF version")


class AutofixMode(unittest.TestCase):
    """--fix rewrites DET-004 initializers and missing
    SOE_THREAD_OWNED class tags (with the todo placeholder), is
    idempotent, and preserves line endings."""

    SRC = ("#include \"sim/annotations.hh\"\n"
           "\n"
           "namespace soefair\n"
           "{\n"
           "\n"
           "struct Sample\n"
           "{\n"
           "    int count;\n"
           "    double mean;\n"
           "    bool valid;\n"
           "    void *cookie;\n"
           "};\n"
           "\n"
           "} // namespace soefair\n")

    def make_tree(self, text, dest="src/mem/fix_me.hh"):
        root = tempfile.mkdtemp(prefix="detlint_fix_")
        self.addCleanup(shutil.rmtree, root, ignore_errors=True)
        full = os.path.join(root, dest)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8", newline="") as f:
            f.write(text)
        return root, dest, full

    def test_fix_initializers_and_class_tag(self):
        root, dest, full = self.make_tree(self.SRC)
        before = detlint.check_file(root, dest, "text", None)
        self.assertEqual(
            {"DET-004", "OWN-001"}, {f.rule for f in before})
        fixed, unfixable = detlint.apply_fixes(root, before)
        self.assertEqual(5, fixed)  # 4 initializers + 1 class tag
        self.assertEqual(0, unfixable)
        with open(full, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("int count = 0;", text)
        self.assertIn("double mean = 0.0;", text)
        self.assertIn("bool valid = false;", text)
        self.assertIn("void *cookie = nullptr;", text)
        self.assertIn("struct SOE_THREAD_OWNED(todo) Sample", text)
        # DET-004 and OWN-001 are gone; only the OWN-002 todo
        # placeholder remains, keeping the gate red until a human
        # assigns a real domain.
        after = detlint.check_file(root, dest, "text", None)
        self.assertEqual(["OWN-002"], [f.rule for f in after])

    def test_fix_is_idempotent(self):
        root, dest, full = self.make_tree(self.SRC)
        detlint.apply_fixes(
            root, detlint.check_file(root, dest, "text", None))
        with open(full, encoding="utf-8", newline="") as f:
            once = f.read()
        fixed, unfixable = detlint.apply_fixes(
            root, detlint.check_file(root, dest, "text", None))
        self.assertEqual(0, fixed)
        with open(full, encoding="utf-8", newline="") as f:
            twice = f.read()
        self.assertEqual(once, twice,
                         "--fix applied twice must be a no-op")

    def test_fix_preserves_crlf(self):
        crlf = self.SRC.replace("\n", "\r\n")
        root, dest, full = self.make_tree(crlf)
        detlint.apply_fixes(
            root, detlint.check_file(root, dest, "text", None))
        with open(full, encoding="utf-8", newline="") as f:
            text = f.read()
        self.assertNotIn("\n", text.replace("\r\n", ""),
                         "fix introduced a bare LF into a CRLF file")
        self.assertIn("int count = 0;\r\n", text)


class ReportArtifacts(unittest.TestCase):
    """--json, --emit-ownership and the $GITHUB_STEP_SUMMARY drift
    diff, end-to-end through main()."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="detlint_report_")
        self.addCleanup(shutil.rmtree, self.root,
                        ignore_errors=True)
        dest = os.path.join(self.root, "src", "core")
        os.makedirs(dest)
        shutil.copyfile(os.path.join(FIXTURES, "err001_bad.cc"),
                        os.path.join(dest, "err001_bad.cc"))
        self.baseline = os.path.join(self.root, "baseline.txt")

    def run_main(self, *extra):
        return detlint.main(["--root", self.root, "--backend",
                             "text", "--baseline", self.baseline,
                             *extra])

    def test_json_report(self):
        import json
        path = os.path.join(self.root, "detlint.json")
        self.assertEqual(1, self.run_main("--json", path))
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
        self.assertEqual("detlint", report["tool"])
        self.assertEqual("text", report["backend"])
        self.assertIn("ERR-001", report["rules"])
        self.assertEqual(len(golden_lines("err001_bad.cc")),
                         report["counts"]["total"])
        self.assertEqual(report["counts"]["total"],
                         report["counts"]["new"])
        for finding in report["findings"]:
            self.assertEqual("ERR-001", finding["rule"])
            self.assertEqual("src/core/err001_bad.cc",
                             finding["path"])

    def test_step_summary_diff(self):
        summary = os.path.join(self.root, "summary.md")
        old = os.environ.get("GITHUB_STEP_SUMMARY")
        os.environ["GITHUB_STEP_SUMMARY"] = summary
        try:
            self.assertEqual(1, self.run_main())
        finally:
            if old is None:
                del os.environ["GITHUB_STEP_SUMMARY"]
            else:
                os.environ["GITHUB_STEP_SUMMARY"] = old
        with open(summary, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("detlint baseline drift", text)
        self.assertIn("new finding(s)", text)
        self.assertIn("+ src/core/err001_bad.cc", text)

    def test_emit_ownership_manifest(self):
        import json
        src = os.path.join(self.root, "src", "mem")
        os.makedirs(src)
        shutil.copyfile(os.path.join(FIXTURES, "own001_clean.hh"),
                        os.path.join(src, "own001_clean.hh"))
        out = os.path.join(self.root, "ownership.json")
        # err001_bad.cc still makes the scan exit 1; the manifest
        # must be written regardless.
        self.assertEqual(1, self.run_main("--emit-ownership", out))
        with open(out, encoding="utf-8") as f:
            manifest = json.load(f)
        classes = {c["class"]: c for c in manifest["classes"]}
        self.assertEqual("shared",
                         classes["MshrLedger"]["domain"])
        self.assertFalse(classes["MshrLedger"]["inherited"])
        self.assertEqual("shared",
                         classes["MshrLedger::Waiter"]["domain"])
        self.assertTrue(classes["MshrLedger::Waiter"]["inherited"])
        self.assertEqual("core_lp",
                         classes["LedgerIndex"]["domain"])
        # const-only classes are immutable: no manifest entry.
        self.assertNotIn("LedgerLimits", classes)
        self.assertIn("core_lp", manifest["domains"])


class BaselineGate(unittest.TestCase):
    """End-to-end through main(): new findings fail, baselined
    findings pass, stale baseline entries are reported but pass."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="detlint_gate_")
        dest = os.path.join(self.root, "src", "harness")
        os.makedirs(dest)
        shutil.copyfile(os.path.join(FIXTURES, "det002_bad.cc"),
                        os.path.join(dest, "det002_bad.cc"))
        self.baseline = os.path.join(self.root, "baseline.txt")

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def run_main(self, *extra):
        return detlint.main(["--root", self.root, "--backend", "text",
                             "--baseline", self.baseline, *extra])

    def test_new_findings_fail(self):
        self.assertEqual(1, self.run_main())

    def test_baselined_findings_pass(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        self.assertEqual(0, self.run_main())

    def test_stale_baseline_entries_still_pass(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        with open(self.baseline, "a", encoding="utf-8") as f:
            f.write("src/harness/gone.cc:1: DET-002: stale entry\n")
        self.assertEqual(0, self.run_main())

    def test_fixing_a_finding_keeps_passing(self):
        self.assertEqual(0, self.run_main("--update-baseline"))
        # "Fix" the file: drop the second getenv call.
        path = os.path.join(self.root, "src", "harness",
                            "det002_bad.cc")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        text = text.replace('v = getenv("SOEFAIR_FALLBACK");',
                            'v = "";')
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        self.assertEqual(0, self.run_main())


@unittest.skipUnless(detlint.libclang_available(),
                     "libclang python bindings not importable")
class LibclangCrossCheck(TreeFixture):
    """Best-effort AST backend must agree on the seeded call-site
    rules (DET-001/002/003 are token-identical across backends)."""

    def test_det001(self):
        BadFixturesFire.assert_golden(
            self, "det001_bad.cc", backend="libclang")

    def test_det002(self):
        BadFixturesFire.assert_golden(
            self, "det002_bad.cc", backend="libclang")


if __name__ == "__main__":
    unittest.main(verbosity=2)
