#!/usr/bin/env python3
"""detlint/soelint - cross-layer contract checker for soefair.

Enforces the simulator's load-bearing contracts as named, baselined
rules (see docs/correctness.md, "soelint rule families"):

Determinism & concurrency (PR "detlint"):
  DET-001  no wall-clock / rand() / locale / PID-dependent values in
           model code (src/{sim,cpu,mem,soe,workload}).
  DET-002  no std::getenv outside the single whitelisted accessor.
  DET-003  no unordered containers or pointer-keyed ordered containers
           in code that feeds statistics::, payload codecs or CSV.
  DET-004  no uninitialized scalar/pointer members in aggregate
           structs declared in src/ headers.
  CONC-001 in files opted in with `// detlint: conc-optin`, every
           mutable data member must carry a capability annotation
           (SOE_GUARDED_BY / SOE_PT_GUARDED_BY / SOE_THREAD_OWNED).

Fast-forward contract (docs/performance.md):
  FF-001   every class declaring tick() in src/cpu, src/mem, src/soe
           must also declare nextWakeTick(): a ticking component with
           no wake horizon silently breaks quiescent-run jumping.
  FF-002   every stall counter (*[Ss]tall*[Cc]ycles*) incremented
           per-cycle (++x / x++ / x += 1) in src/cpu, src/mem,
           src/soe must also be bulk-credited in a
           creditSkippedCycles() body in the same file, or
           fast-forward changes its final value (byte-identity gate).

Error taxonomy (docs/robustness.md):
  ERR-001  no naked exit()/_exit()/abort()/std::terminate and no raw
           `throw expr` in src/ outside whitelisted sites; defined
           failures go through raiseError<E> so the exit-code
           taxonomy holds (bare `throw;` rethrow is allowed).
  ERR-002  every SimError subclass in src/sim/errors.hh must have an
           exitCode() return and a kind-name case in
           src/sim/errors.cc, and every raiseError<E> in the tree
           must name a declared SimError class.
  ERR-003  every CLI verb's documented exit codes
           (src/harness/cli_verbs.cc) must cover the codes statically
           reachable from its implementation in tools/soefair_cli.cc,
           and must only use codes from the known taxonomy.

Stats determinism:
  STAT-001 payload/CSV-feeding code must route floating point through
           the statfmt precision codec (src/stats/statfmt.hh): no raw
           operator<< of a double/float and no ad-hoc setprecision.
  STAT-002 each statistics counter (parent, "name", "desc") is
           registered at most once per (parent, name) in a file.

PDES ownership manifest:
  OWN-001  every mutable class in src/cpu, src/mem, src/soe and
           src/harness/system.* must carry a class-level
           SOE_THREAD_OWNED(domain) sharding domain
           (core_lp | shared | supervisor | worker | value | config).
  OWN-002  the `todo` placeholder domain (written by --fix) must not
           survive into the tree.
  `--emit-ownership PATH` writes the machine-readable manifest the
  PDES decomposition consumes (see docs/correctness.md for schema).

Backends
--------
The default backend is a dependency-free token analysis: comments and
string literals are stripped (line-preserving, CRLF- and raw-string-
literal-aware), then rule matchers run over the token text; member
rules use a brace-tracking class parser. When the `clang` Python
package (libclang) is importable, the member-level rules are
additionally cross-checked on the real AST via `--backend libclang`.

Cross-file rules (ERR-002/ERR-003, the STAT-001 float registry) run
on a tree context built from the scanned file set; they anchor on the
canonical paths src/sim/errors.{hh,cc}, src/harness/cli_verbs.cc and
tools/soefair_cli.cc and are skipped when those files are not part of
the scan (e.g. single-file invocations).

Suppressions
------------
  // detlint: allow(ERR-001)       suppress rule(s) on this line
  // NOLINT(DET-004)               same, clang-tidy spelling
  // detlint: skip-file            exempt the whole file
  // detlint: conc-optin           opt the file into CONC-001

Autofix
-------
`--fix` rewrites mechanical findings in place: DET-004 member
initializers, and missing SOE_THREAD_OWNED tags (OWN-001 / CONC-001)
with the `todo` placeholder domain, which OWN-002 keeps flagging
until a human picks the real domain. Fixing is idempotent.

Exit status: 0 clean (or all findings baselined), 1 new findings,
2 usage/setup error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field as dataclass_field

RULES = {
    "DET-001": "no wall-clock/rand/locale/PID values in model code",
    "DET-002": "no std::getenv outside the whitelisted accessor",
    "DET-003": "no unordered/pointer-keyed containers feeding "
               "deterministic output",
    "DET-004": "no uninitialized scalar members in aggregate structs",
    "CONC-001": "mutable members need capability/ownership "
                "annotations in opted-in files",
    "FF-001": "ticking classes must declare nextWakeTick()",
    "FF-002": "per-cycle stall counters must be bulk-credited in "
              "creditSkippedCycles()",
    "ERR-001": "no naked exit/abort/terminate or raw throw outside "
               "whitelisted sites",
    "ERR-002": "every SimError class maps to an exit code; every "
               "raiseError<E> names a declared class",
    "ERR-003": "CLI verb exit-code docs cross-check against "
               "statically reachable codes",
    "STAT-001": "floating point feeding payload/CSV goes through the "
                "statfmt codec",
    "STAT-002": "each statistics counter registered at most once",
    "OWN-001": "mutable classes in the PDES scope carry a "
               "SOE_THREAD_OWNED sharding domain",
    "OWN-002": "no `todo` placeholder ownership domains in the tree",
}

# --- rule scopes (paths are '/'-separated, relative to the repo) ----

DET001_DIRS = ("src/sim/", "src/cpu/", "src/mem/", "src/soe/",
               "src/workload/")
DET002_WHITELIST = ("src/harness/env.cc",)
DET003_PREFIXES = ("src/stats/", "src/harness/", "bench/",
                   "src/core/metrics")
DET004_PREFIXES = ("src/",)
SCAN_DIRS = ("src", "bench", "tools", "tests", "examples")
CXX_EXTENSIONS = (".cc", ".hh", ".h", ".cpp", ".hpp")
HEADER_EXTENSIONS = (".hh", ".h", ".hpp")

FF_DIRS = ("src/cpu/", "src/mem/", "src/soe/")
ERR001_SCOPE = ("src/",)
#: Sanctioned raw-throw / hard-exit sites: the error machinery itself.
ERR001_WHITELIST = (
    "src/sim/logging.hh",    # FatalError/PanicError throw helpers
    "src/sim/errors.hh",     # raiseError<E> itself throws
    "src/sim/invariant.cc",  # SOE_AUDIT failure throw
)
STAT001_PREFIXES = DET003_PREFIXES
#: Sanctioned formatter implementations (the codec itself, and the
#: fixed-width deterministic table writer).
STAT001_WHITELIST = (
    "src/stats/statfmt.cc",
    "src/stats/statfmt.hh",
    "src/harness/table.cc",
)
STAT002_PREFIXES = ("src/",)
OWN_DIRS = ("src/cpu/", "src/mem/", "src/soe/")
OWN_EXTRA = ("src/harness/system.hh",)

#: Sharding-domain vocabulary for the PDES ownership manifest.
OWN_DOMAINS = {
    "core_lp": "per-core logical process: state advanced only by the "
               "LP that owns the core (fetch/ROB/LSQ/L1/TLB...)",
    "shared": "bus/LLC-shared state crossed by multiple core LPs "
              "under the conservative lookahead window",
    "supervisor": "supervisor/harness state: job control, journals, "
                  "service and network front-end",
    "worker": "per-worker-thread state in the in-process sweep "
              "executor: each pool thread owns its own queue/cache "
              "handles and simulator instances",
    "value": "value type passed between owners by copy/move; no "
             "resident owner",
    "config": "set before the run starts, immutable while LPs run",
}
OWN_PLACEHOLDER = "todo"

#: Anchor files for the cross-file rules.
ERRORS_HH = "src/sim/errors.hh"
ERRORS_CC = "src/sim/errors.cc"
CLI_VERBS_CC = "src/harness/cli_verbs.cc"
CLI_MAIN_CC = "tools/soefair_cli.cc"
#: Exit codes any soefair process can produce regardless of verb
#: (ok / fatal / usage / panic); implicitly documented everywhere.
BUILTIN_EXIT_CODES = {0, 1, 2, 3}

ANNOTATION_MACROS = (
    "SOE_GUARDED_BY",
    "SOE_PT_GUARDED_BY",
    "SOE_THREAD_OWNED",
)

DET001_PATTERNS = [
    (re.compile(r"\b(time|clock|clock_gettime|gettimeofday|"
                r"localtime|localtime_r|gmtime|gmtime_r|strftime|"
                r"mktime|timespec_get)\s*\("),
     "wall-clock read"),
    (re.compile(r"\bstd::chrono\b"), "std::chrono clock"),
    (re.compile(r"\b(system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "chrono clock type"),
    (re.compile(r"\b(rand|srand|random|srandom|drand48|lrand48|"
                r"mrand48|rand_r)\s*\("),
     "libc PRNG"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\b(getpid|gettid|pthread_self)\s*\("),
     "process/thread id"),
    (re.compile(r"\b(setlocale|localeconv)\s*\("), "locale call"),
    (re.compile(r"\bstd::locale\b"), "std::locale"),
]

DET002_PATTERN = re.compile(r"\bgetenv\s*\(")

DET003_UNORDERED = re.compile(
    r"\b(?:std::)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)\s*<")
DET003_PTR_KEYED = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<\s*[A-Za-z_][\w:<>\s]*?"
    r"\*\s*[,>]")

SCALAR_TYPE = re.compile(
    r"^(?:(?:std::)?(?:u?int(?:8|16|32|64|ptr|max)?_t|size_t|"
    r"ptrdiff_t)|bool|char|short|int|long|unsigned|signed|float|"
    r"double|Tick|Addr|Cycles|ThreadID)\b")
FLOAT_TYPE = re.compile(
    r"^(?:long\s+double|double|float)\b")

IDENT = re.compile(r"[A-Za-z_]\w*")

ALLOW_DIRECTIVE = re.compile(
    r"(?:detlint:\s*allow|NOLINT)\(([^)]*)\)")
SKIP_FILE_DIRECTIVE = "detlint: skip-file"
CONC_OPTIN_DIRECTIVE = "detlint: conc-optin"

#: ERR-001 process-terminating calls. Member calls (preceded by
#: '.'/'->') are not process exits and are skipped at the match site.
ERR001_EXIT_CALL = re.compile(
    r"\b(?:std\s*::\s*)?(exit|_exit|_Exit|quick_exit|abort|"
    r"terminate)\s*\(")
#: Raw `throw expr` (bare `throw;` rethrow is fine).
ERR001_THROW = re.compile(r"\bthrow\b(?!\s*;)")

#: FF-002 stall-counter name shape and per-cycle increment forms.
STALL_NAME = re.compile(r"\A\w*[Ss]tall\w*[Cc]ycles\w*\Z")
INC_PATTERNS = [
    re.compile(r"\+\+\s*(?:this\s*->\s*)?([A-Za-z_]\w*)"),
    re.compile(r"\b([A-Za-z_]\w*)\s*\+\+"),
    re.compile(r"\b([A-Za-z_]\w*)\s*\+=\s*1\s*;"),
]
CREDIT_DEF = re.compile(
    r"\bcreditSkippedCycles\s*\([^()]*\)\s*(?:const\s*)?\{")

STAT001_SETPREC = re.compile(
    r"(?:\bsetprecision\s*\(|\.\s*precision\s*\()")
STAT001_FLOAT_LITERAL = re.compile(
    r"<<\s*[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|"
    r"\d+[eE][+-]?\d+)[fFlL]?\b")
STAT001_STREAMED_EXPR = re.compile(
    r"<<\s*([A-Za-z_][\w:.\[\]]*(?:->[\w:.\[\]]+)*)\s*(?![\w(])")
STAT001_LOCAL_FLOAT = re.compile(
    r"\b(?:double|float)\s+([a-z_]\w*)\s*[=;,)\]:]")

STAT002_REGISTRATION = re.compile(
    r"\b\w+\s*\(\s*(&\s*[\w.>\-]+|this)\s*,\s*"
    r"\"([^\"]+)\"\s*,\s*\"")

RAISE_ERROR = re.compile(r"\braiseError\s*<\s*(\w+)\s*>")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    #: Optional autofix hint, e.g. ("init", " = 0") or
    #: ("class-tag",) / ("member-tag",). Not part of identity.
    fixhint: tuple | None = None

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


@dataclass
class FileDirectives:
    skip_file: bool = False
    conc_optin: bool = False
    #: line number -> set of rule ids allowed (empty set = all)
    allowed: dict = dataclass_field(default_factory=dict)

    def is_allowed(self, rule: str, line: int) -> bool:
        if self.skip_file:
            return True
        rules = self.allowed.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


def scan_directives(raw: str) -> FileDirectives:
    d = FileDirectives()
    if SKIP_FILE_DIRECTIVE in raw:
        d.skip_file = True
    if CONC_OPTIN_DIRECTIVE in raw:
        d.conc_optin = True
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_DIRECTIVE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")
                     if r.strip()}
            d.allowed.setdefault(lineno, set()).update(rules)
            # A comment-only directive line also covers the next
            # line, so justifications can precede the code they
            # annotate instead of trailing on one long line.
            if line.lstrip().startswith("//"):
                d.allowed.setdefault(lineno + 1, set()).update(rules)
    return d


RAW_STRING_PREFIX = re.compile(r"(?:u8R|uR|UR|LR|R)\Z")


def _raw_string_prefix(raw: str, i: int) -> str | None:
    """If the '"' at raw[i] opens a raw string literal, return its
    encoding prefix ('R', 'u8R', ...), else None. The prefix must not
    itself be the tail of a longer identifier (fooR"..." is not a raw
    string)."""
    m = RAW_STRING_PREFIX.search(raw, max(0, i - 3), i)
    if not m:
        return None
    start = m.start()
    if start > 0 and (raw[start - 1].isalnum() or
                      raw[start - 1] == "_"):
        return None
    return m.group(0)


def _blank_literal(seg: str, quote: str) -> str:
    """Blank a string/char literal's contents while keeping its
    delimiters, so adjacency-sensitive rules don't see the literal
    as plain whitespace (`throw "boom";` must not scan like the
    bare-rethrow `throw ;`)."""
    body = "".join("\n" if ch == "\n" else " " for ch in seg)
    if len(seg) >= 2 and seg[-1] == quote:
        return quote + body[1:-1] + quote
    return body


def strip_comments_and_strings(raw: str,
                               keep_strings: bool = False) -> str:
    """Blank out comments (and, unless keep_strings, string and char
    literals), preserving the position of every remaining character
    (newlines survive; CRLF inputs are expected to be normalized to
    LF by the caller). Raw string literals with any encoding prefix
    (R / uR / UR / LR / u8R) are recognized so quotes and comment
    markers inside them never leak into the token text."""
    out = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and raw[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (raw[i] == "*" and i + 1 < n and
                                 raw[i + 1] == "/"):
                out.append("\n" if raw[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' and _raw_string_prefix(raw, i) is not None:
            # Raw string: "delim( ... )delim" — no escapes inside;
            # scan to the exact closing delimiter.
            m = re.match(r'"([^()\\\s]{0,16})\(', raw[i:])
            if m:
                close = f"){m.group(1)}\""
                end = raw.find(close, i + m.end())
                end = n if end < 0 else end + len(close)
            else:  # ill-formed raw string: treat as ordinary text
                end = i + 1
            seg = raw[i:end]
            if keep_strings:
                out.append(seg)
            else:
                out.append(_blank_literal(seg, '"'))
            i = end
        elif c == '"' or c == "'":
            quote = c
            start = i
            i += 1
            while i < n and raw[i] != quote and raw[i] != "\n":
                i += 2 if raw[i] == "\\" and i + 1 < n else 1
            if i < n and raw[i] == quote:
                i += 1
            seg = raw[start:i]
            if keep_strings:
                out.append(seg)
            else:
                out.append(_blank_literal(seg, quote))
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# --- token rules ----------------------------------------------------


def check_det001(path: str, text: str):
    seen_lines = set()
    for pattern, label in DET001_PATTERNS:
        for m in pattern.finditer(text):
            # One finding per line: overlapping patterns (e.g.
            # 'std::chrono' and 'steady_clock') describe one offense.
            line = line_of(text, m.start())
            if line in seen_lines:
                continue
            seen_lines.add(line)
            yield Finding(
                path, line, "DET-001",
                f"forbidden non-deterministic source '{m.group(0).strip()}'"
                f" ({label}) in model code; timing belongs in "
                "src/harness or bench/perf_*")


def check_det002(path: str, text: str):
    for m in DET002_PATTERN.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-002",
            "getenv outside the whitelisted accessor; route the read "
            "through harness/env.hh")


def check_det003(path: str, text: str):
    for m in DET003_UNORDERED.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-003",
            f"unordered container '{m.group(1)}' in deterministic-"
            "output code (hash/address-dependent iteration order); "
            "use an ordered container or sort before emitting")
    for m in DET003_PTR_KEYED.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-003",
            f"pointer-keyed 'std::{m.group(1)}' in deterministic-"
            "output code (allocation-address-dependent order); key "
            "by a stable id instead")


def check_err001(path: str, text: str):
    for m in ERR001_EXIT_CALL.finditer(text):
        before = text[:m.start()].rstrip()
        if before.endswith((".", "->")):
            continue  # member call, not a process exit
        name = m.group(1)
        if name == "terminate" and "::" not in m.group(0):
            continue  # only std::terminate is the process killer
        yield Finding(
            path, line_of(text, m.start()), "ERR-001",
            f"naked process exit '{name}()' bypasses the SimError "
            "exit-code taxonomy; raise a typed error (raiseError<E>) "
            "or return an exit code through main")
    for m in ERR001_THROW.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "ERR-001",
            "raw `throw` outside the error machinery; use "
            "raiseError<E> (sim/errors.hh) or fatal()/panic() so the "
            "failure lands in the exit-code taxonomy")


def check_stat001(path: str, text: str, float_names):
    """Flag floating point streamed to an ostream without going
    through the statfmt codec: ad-hoc precision manipulation, float
    literals after `<<`, and streamed identifier chains whose
    terminal name is a known double/float (tree-wide member registry
    + file-local declarations)."""
    local_floats = set(STAT001_LOCAL_FLOAT.findall(text))
    names = float_names | local_floats
    for m in STAT001_SETPREC.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "STAT-001",
            "ad-hoc precision manipulation in payload/CSV-feeding "
            "code; use statistics::statfmt (full/csv/stat) so float "
            "formatting is centralized and byte-stable")
    for m in STAT001_FLOAT_LITERAL.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "STAT-001",
            "float literal streamed raw; route it through "
            "statistics::statfmt so the precision contract holds")
    for m in STAT001_STREAMED_EXPR.finditer(text):
        expr = m.group(1)
        ids = IDENT.findall(expr)
        if not ids:
            continue
        terminal = ids[-1]
        # A bare identifier is trusted only against this file's own
        # double/float declarations: the tree-wide member registry
        # would otherwise flag any local (e.g. an integer `quota`)
        # that happens to share a name with some class's double.
        pool = local_floats if len(ids) == 1 else names
        if terminal in pool:
            yield Finding(
                path, line_of(text, m.start()), "STAT-001",
                f"double '{expr}' streamed raw into payload/CSV-"
                "feeding output; wrap it in statistics::statfmt "
                "(full/csv/stat) to pin the precision")


def check_stat002(path: str, text_keep: str):
    """Duplicate (parent, "name") statistics registrations in one
    file: the stats tree rejects or shadows duplicates at runtime,
    and the dump would carry an ambiguous name either way."""
    seen = {}
    for m in STAT002_REGISTRATION.finditer(text_keep):
        parent = re.sub(r"\s+", "", m.group(1))
        key = (parent, m.group(2))
        line = line_of(text_keep, m.start())
        if key in seen:
            yield Finding(
                path, line, "STAT-002",
                f"statistics name '{m.group(2)}' registered twice "
                f"under parent '{parent}' (first at line "
                f"{seen[key]}); every counter must be registered "
                "exactly once")
        else:
            seen[key] = line


# --- member parser (DET-004 / CONC-001 / FF-001 / OWN) --------------


@dataclass
class Member:
    name: str
    line: int
    chunk: str
    has_init: bool
    is_scalar: bool
    is_pointer: bool
    is_static: bool
    is_const: bool
    is_reference: bool
    is_bitfield: bool
    has_annotation: bool
    is_float: bool = False
    is_array: bool = False


@dataclass
class ClassInfo:
    name: str
    kind: str  # struct | class | union
    line: int            # line of the opening '{'
    head_line: int = 0   # line where the class head chunk starts
    has_ctor: bool = False
    members: list = dataclass_field(default_factory=list)
    methods: list = dataclass_field(default_factory=list)
    parent: "ClassInfo | None" = None
    domain: str | None = None  # class-level SOE_THREAD_OWNED domain

    def qualified_name(self) -> str:
        parts = []
        node = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "::".join(reversed(parts))

    def effective_domain(self):
        """(domain, inherited) walking up enclosing classes."""
        node = self
        inherited = False
        while node is not None:
            if node.domain is not None:
                return node.domain, inherited
            node = node.parent
            inherited = True
        return None, False

    def mutable_members(self):
        return [m for m in self.members
                if not m.is_static and not m.is_const]


_ANN_MARKER = {
    "SOE_GUARDED_BY": "__DETLINT_ANN_GUARDED__",
    "SOE_PT_GUARDED_BY": "__DETLINT_ANN_PTGUARDED__",
}
_ANN_OWNED_PREFIX = "__DETLINT_ANN_OWNED_"
_ANN_OWNED_SUFFIX = "_DOM__"
_ANN_OWNED_RE = re.compile(
    re.escape(_ANN_OWNED_PREFIX) + r"(\w+?)" +
    re.escape(_ANN_OWNED_SUFFIX))
_ANN_CAPABILITY_MARKS = tuple(_ANN_MARKER.values()) + (
    _ANN_OWNED_PREFIX,)


def _mask_annotations(text: str) -> str:
    """Replace annotation macros (and their parenthesized argument)
    with paren-free marker tokens, so '(' detection in the member
    parser is not confused. SOE_THREAD_OWNED keeps its domain inside
    the marker (__DETLINT_ANN_OWNED_<domain>_DOM__) so class-level
    ownership extraction still sees it. Newlines inside a masked span
    are kept so line numbers stay stable."""
    def make_repl(marker):
        def repl(m):
            return marker + "\n" * m.group(0).count("\n")
        return repl

    def owned_repl(m):
        arg = re.sub(r"\W+", "_", m.group(1).strip()).strip("_")
        marker = (_ANN_OWNED_PREFIX + (arg or "none") +
                  _ANN_OWNED_SUFFIX)
        return marker + "\n" * m.group(0).count("\n")

    text = re.sub(r"\bSOE_THREAD_OWNED\s*\(([^()]*)\)",
                  owned_repl, text)
    for macro, marker in _ANN_MARKER.items():
        text = re.sub(r"\b" + macro + r"\s*\([^()]*\)",
                      make_repl(marker), text)
    # Mask remaining SOE_* attribute macros (SOE_REQUIRES etc.) the
    # same way so their parens don't look like function declarators.
    text = re.sub(r"\bSOE_[A-Z_]+\s*\([^()]*\)",
                  make_repl("__DETLINT_ANN_OTHER__"), text)
    return text


def strip_preprocessor(text: str) -> str:
    """Blank out preprocessor directives (including backslash
    continuations), preserving newlines. The member parser and the
    token rules both run on directive-free text: macro *definitions*
    are not analyzable as code."""
    out = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def _top_level_positions(s: str, wanted: str):
    """Positions of `wanted` chars at paren/angle/bracket depth 0.
    Angle brackets are only tracked up to the first top-level '='
    (after which '<' is likely a comparison)."""
    depth_paren = depth_angle = depth_bracket = depth_brace = 0
    seen_eq = False
    out = []
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        nxt = s[i + 1] if i + 1 < n else ""
        at_top = (depth_paren == 0 and depth_angle == 0 and
                  depth_bracket == 0 and depth_brace == 0)
        if c in wanted and at_top:
            if c == "=" and (nxt == "=" or (i > 0 and
                                            s[i - 1] in "=<>!+-*/&|^")):
                pass  # comparison/compound, not an initializer
            else:
                out.append(i)
                if c == "=":
                    seen_eq = True
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren = max(0, depth_paren - 1)
        elif c == "[":
            depth_bracket += 1
        elif c == "]":
            depth_bracket = max(0, depth_bracket - 1)
        elif c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace = max(0, depth_brace - 1)
        elif c == "<" and not seen_eq:
            if c == nxt:  # <<
                i += 1
            else:
                depth_angle += 1
        elif c == ">" and not seen_eq:
            if i > 0 and s[i - 1] == "-":  # ->
                pass
            elif c == nxt:  # >>
                depth_angle = max(0, depth_angle - 2)
                i += 1
            else:
                depth_angle = max(0, depth_angle - 1)
        i += 1
    return out


def _normalize_operators(s: str) -> str:
    return re.sub(r"\boperator\s*(\(\)|\[\]|[^\s(]{1,3})",
                  "operator_fn", s)


def _analyze_chunk(chunk: str, line: int, had_brace_init: bool,
                   is_bitfield: bool):
    """Classify one class-scope declaration chunk.

    Returns ('member', Member), ('function', name) or None."""
    s = chunk.strip()
    if not s:
        return None
    if re.match(r"^(using|typedef|friend|template|static_assert|"
                r"enum|namespace|extern|public|private|protected)\b",
                s):
        return None
    if re.match(r"^(class|struct|union)\b[^;]*$", s):
        return None  # forward declaration remnants
    has_annotation = (any(m in s for m in _ANN_MARKER.values()) or
                      _ANN_OWNED_PREFIX in s)
    s_norm = _normalize_operators(s)
    parens = _top_level_positions(s_norm, "(")
    eqs = _top_level_positions(s_norm, "=")
    if parens and (not eqs or parens[0] < eqs[0]):
        before = s_norm[:parens[0]]
        before = re.sub(r"__DETLINT_ANN\w*", " ", before)
        ids = IDENT.findall(before)
        return ("function", ids[-1] if ids else "")
    is_static = bool(re.search(r"\b(static|constexpr|constinit)\b",
                               s_norm))
    # Type/qualifier inspection uses the part before the first '='.
    head = s_norm[:eqs[0]] if eqs else s_norm
    is_const = bool(re.search(r"\bconst\b", head))
    is_reference = "&" in head
    is_pointer = "*" in head
    is_array = bool(re.search(r"\[[^\]]*\]", head))
    has_init = bool(eqs) or had_brace_init
    # Name: last identifier of the declarator head, ignoring the
    # annotation markers and array brackets.
    head_clean = head
    head_clean = re.sub(r"__DETLINT_ANN\w*", " ", head_clean)
    head_clean = re.sub(r"\[[^\]]*\]", " ", head_clean)
    ids = IDENT.findall(head_clean)
    if not ids:
        return None
    name = ids[-1]
    # Type text: everything before the member name's last occurrence.
    type_text = head_clean[:head_clean.rfind(name)].strip()
    type_text = re.sub(r"^\s*(mutable|volatile|inline|static|"
                       r"constexpr|constinit|const)\b\s*", "",
                       type_text)
    type_text = re.sub(r"^\s*(mutable|volatile|const)\b\s*", "",
                       type_text)
    is_scalar = bool(SCALAR_TYPE.match(type_text)) and \
        "<" not in type_text
    is_float = bool(FLOAT_TYPE.match(type_text)) and \
        "<" not in type_text and not is_pointer
    if not type_text:
        return None  # label or stray token, not a declaration
    return ("member", Member(
        name=name, line=line, chunk=s, has_init=has_init,
        is_scalar=is_scalar, is_pointer=is_pointer,
        is_static=is_static, is_const=is_const,
        is_reference=is_reference, is_bitfield=is_bitfield,
        has_annotation=has_annotation, is_float=is_float,
        is_array=is_array))


def parse_classes(text: str):
    """Brace-tracking scan of (stripped, annotation-masked) C++
    yielding ClassInfo for every class/struct/union body, including
    nested ones. Records members, method names (declarations and
    in-class definitions), the enclosing class, the head-chunk line
    and any class-level SOE_THREAD_OWNED domain."""
    classes = []
    # Scope stack entries: dict(kind=..., cls=ClassInfo or None)
    stack = [{"kind": "top", "cls": None}]
    buf = []
    buf_start = 0  # position where the current chunk began
    had_brace_init = False
    is_bitfield = False
    i, n = 0, len(text)

    def current():
        return stack[-1]

    def enclosing_class():
        for scope in reversed(stack):
            if scope["kind"] == "class" and scope["cls"] is not None:
                return scope["cls"]
        return None

    def flush_chunk(end_pos):
        nonlocal buf, buf_start, had_brace_init, is_bitfield
        scope = current()
        chunk = "".join(buf)
        if scope["kind"] == "class" and scope["cls"] is not None:
            res = _analyze_chunk(chunk, line_of(text, buf_start),
                                 had_brace_init, is_bitfield)
            if res:
                kind, payload = res
                if kind == "member":
                    scope["cls"].members.append(payload)
                elif kind == "function":
                    scope["cls"].methods.append(payload)
                    if payload == scope["cls"].name:
                        scope["cls"].has_ctor = True
        buf = []
        buf_start = end_pos + 1
        had_brace_init = False
        is_bitfield = False

    paren_depth = 0
    angle_depth = 0

    while i < n:
        c = text[i]
        # A chunk starts at its first non-space character; leading
        # whitespace is never buffered, so buf_start (and thus the
        # reported line) always points at real text.
        if not buf:
            if c.isspace():
                i += 1
                continue
            if c not in "{};":
                buf_start = i
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "(":
            paren_depth += 1
            buf.append(c)
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
            buf.append(c)
        elif c == "<" and paren_depth == 0:
            if nxt == "<":
                buf.append("<<")
                i += 1
            else:
                # Heuristic: template bracket if preceded by ident.
                prev = "".join(buf).rstrip()[-1:] if buf else ""
                if prev and (prev.isalnum() or prev in "_>,:"):
                    angle_depth += 1
                buf.append(c)
        elif c == ">" and paren_depth == 0:
            if buf and buf[-1] == "-":
                buf.append(c)
            elif nxt == ">" and angle_depth >= 2:
                angle_depth -= 2
                buf.append(">>")
                i += 1
            else:
                angle_depth = max(0, angle_depth - 1)
                buf.append(c)
        elif c == "{" and paren_depth == 0 and angle_depth == 0:
            chunk = "".join(buf)
            chunk_norm = _normalize_operators(chunk.strip())
            kind = None
            cls = None
            if re.search(r"\bnamespace\b", chunk_norm):
                kind = "namespace"
            elif re.search(r"\benum\b", chunk_norm):
                kind = "enum"
            else:
                cm = list(re.finditer(r"\b(class|struct|union)\b",
                                      chunk_norm))
                parens = _top_level_positions(chunk_norm, "(")
                eqs = _top_level_positions(chunk_norm, "=")
                starts_fn = parens and (not eqs or
                                        parens[0] < eqs[0])
                if cm and not starts_fn:
                    kind = "class"
                    after = chunk_norm[cm[-1].end():]
                    # Name: identifier after the keyword, before any
                    # base-clause colon.
                    after = after.split(":", 1)[0]
                    ids = IDENT.findall(after)
                    # Skip 'final' and masked attribute macros.
                    ids = [x for x in ids if x != "final" and
                           not x.startswith("__DETLINT_ANN")]
                    cname = ids[0] if ids else "<anonymous>"
                    dm = _ANN_OWNED_RE.search(chunk_norm)
                    cls = ClassInfo(cname, cm[-1].group(1),
                                    line_of(text, i),
                                    head_line=line_of(text,
                                                      buf_start),
                                    parent=enclosing_class(),
                                    domain=(dm.group(1) if dm
                                            else None))
                    classes.append(cls)
                elif starts_fn:
                    kind = "block"
                elif current()["kind"] == "class":
                    # Member brace-initializer: consume to matching
                    # '}' as part of the declaration chunk.
                    depth = 1
                    j = i + 1
                    while j < n and depth:
                        if text[j] == "{":
                            depth += 1
                        elif text[j] == "}":
                            depth -= 1
                        j += 1
                    had_brace_init = True
                    buf.append(" ")
                    i = j
                    continue
                elif current()["kind"] in ("top", "namespace"):
                    kind = "namespace"  # extern "C" etc: transparent
                else:
                    kind = "block"
            if kind == "block":
                # Skip the body wholesale.
                depth = 1
                j = i + 1
                while j < n and depth:
                    if text[j] == "{":
                        depth += 1
                    elif text[j] == "}":
                        depth -= 1
                    j += 1
                # In-class function definition: still counts for
                # constructor/method detection.
                flush_chunk(j - 1)
                i = j
                continue
            stack.append({"kind": kind, "cls": cls})
            buf = []
            buf_start = i + 1
            had_brace_init = False
            is_bitfield = False
        elif c == "}" and paren_depth == 0:
            flush_chunk(i)
            if len(stack) > 1:
                stack.pop()
        elif c == ";" and paren_depth == 0 and angle_depth == 0:
            flush_chunk(i)
        elif c == ":" and paren_depth == 0 and angle_depth == 0:
            if nxt == ":":
                buf.append("::")
                i += 1
            else:
                stripped = "".join(buf).strip()
                if current()["kind"] == "class" and stripped in (
                        "public", "private", "protected"):
                    buf = []
                    buf_start = i + 1
                elif (current()["kind"] == "class" and stripped and
                      "(" not in stripped and "=" not in stripped and
                      not re.search(r"\b(class|struct|union|enum)\b",
                                    stripped)):
                    is_bitfield = True
                    buf.append(c)
                else:
                    buf.append(c)
        else:
            buf.append(c)
        i += 1
    return classes


def _init_token_for(member: Member) -> str | None:
    """Autofix initializer for a DET-004 member, or None when the
    declaration is not mechanically fixable (arrays, multi-declarator
    chunks are left to a human)."""
    if member.is_array or "," in member.chunk:
        return None
    if member.is_pointer:
        return " = nullptr"
    if re.match(r"^\s*bool\b", member.chunk):
        return " = false"
    if member.is_float:
        return " = 0.0"
    return " = 0"


def check_det004(path: str, text: str):
    for cls in parse_classes(text):
        if cls.kind == "union" or cls.has_ctor:
            continue
        for m in cls.members:
            if (m.is_static or m.is_const or m.is_reference or
                    m.is_bitfield or m.has_init):
                continue
            if m.is_scalar or m.is_pointer:
                what = "scalar" if m.is_scalar else "pointer"
                yield Finding(
                    path, m.line, "DET-004",
                    f"{what} member '{cls.name}::{m.name}' of an "
                    "aggregate has no initializer (indeterminate "
                    "reads are a nondeterminism hazard); add '= ...' "
                    "or '{}'",
                    fixhint=(("init", _init_token_for(m))
                             if _init_token_for(m) else None))


def check_conc001(path: str, text: str):
    for cls in parse_classes(text):
        for m in cls.members:
            # References cannot be reseated; ownership is annotated
            # where the referent itself is declared.
            if (m.is_static or m.is_const or m.is_reference or
                    m.has_annotation):
                continue
            yield Finding(
                path, m.line, "CONC-001",
                f"mutable member '{cls.name}::{m.name}' lacks a "
                "capability/ownership annotation (SOE_GUARDED_BY / "
                "SOE_PT_GUARDED_BY / SOE_THREAD_OWNED); this file is "
                "conc-optin",
                fixhint=("member-tag",))


def check_ff001(path: str, text: str):
    """Ticking classes must declare a wake horizon: a tick() without
    nextWakeTick() means the fast-forward engine cannot know when the
    component needs to run again, so quiescent-run jumping would
    silently skip its work."""
    for cls in parse_classes(text):
        if "tick" in cls.methods and "nextWakeTick" not in cls.methods:
            yield Finding(
                path, cls.head_line, "FF-001",
                f"class '{cls.qualified_name()}' declares tick() but "
                "no nextWakeTick(); every ticking component must "
                "publish its wake horizon for the fast-forward "
                "engine (docs/performance.md)")


def check_ff002(path: str, text: str):
    """Per-cycle stall counters must be bulk-credited. Event-driven
    bulk adds (x += span) are exempt: only ++x / x++ / x += 1 count
    as per-cycle, because only those diverge when quiescent cycles
    are jumped instead of ticked."""
    credit_spans = []
    credited = set()
    for m in CREDIT_DEF.finditer(text):
        depth = 1
        j = m.end()
        n = len(text)
        while j < n and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        credit_spans.append((m.start(), j))
        credited.update(IDENT.findall(text[m.end():j]))

    def in_credit(pos):
        return any(a <= pos < b for a, b in credit_spans)

    reported = set()
    for pattern in INC_PATTERNS:
        for m in pattern.finditer(text):
            name = m.group(1)
            if not STALL_NAME.match(name) or in_credit(m.start()):
                continue
            if name in credited or name in reported:
                continue
            reported.add(name)
            if credit_spans:
                why = ("is never replayed in this file's "
                       "creditSkippedCycles() body")
            else:
                why = ("but this file defines no "
                       "creditSkippedCycles() to replay it")
            yield Finding(
                path, line_of(text, m.start()), "FF-002",
                f"stall counter '{name}' is incremented per-cycle "
                f"{why}; fast-forward would change its final value "
                "and break byte-identical stats "
                "(docs/performance.md)")


def _own_in_scope(relpath: str) -> bool:
    p = relpath.replace(os.sep, "/")
    return ((p.startswith(OWN_DIRS) or p in OWN_EXTRA) and
            p.endswith(HEADER_EXTENSIONS))


def _own_classes(text: str):
    """Classes the ownership manifest covers: anything mutable
    (>= 1 non-static, non-const data member). Unions are storage
    tricks, not LP state."""
    for cls in parse_classes(text):
        if cls.kind == "union":
            continue
        if not cls.mutable_members():
            continue
        yield cls


def check_own(path: str, text: str):
    for cls in _own_classes(text):
        domain, inherited = cls.effective_domain()
        if domain is None:
            yield Finding(
                path, cls.head_line, "OWN-001",
                f"mutable class '{cls.qualified_name()}' has no "
                "SOE_THREAD_OWNED(domain) sharding domain; the PDES "
                "ownership manifest needs one of: " +
                ", ".join(sorted(OWN_DOMAINS)),
                fixhint=("class-tag",))
        elif domain == OWN_PLACEHOLDER:
            yield Finding(
                path, cls.head_line, "OWN-002",
                f"class '{cls.qualified_name()}' carries the 'todo' "
                "placeholder domain"
                + (" (inherited)" if inherited else "") +
                "; replace it with the real sharding domain: " +
                ", ".join(sorted(OWN_DOMAINS)))
        elif domain not in OWN_DOMAINS:
            yield Finding(
                path, cls.head_line, "OWN-001",
                f"class '{cls.qualified_name()}' declares unknown "
                f"sharding domain '{domain}'; valid domains: " +
                ", ".join(sorted(OWN_DOMAINS)))


def ownership_manifest(records) -> dict:
    """Machine-readable sharding-domain map for the PDES
    decomposition (--emit-ownership). Covers every mutable class in
    the OWN scope, including ones still missing a domain (domain
    null) — the OWN-001 gate keeps those out of a green tree."""
    classes = []
    for rec in records:
        if not _own_in_scope(rec.relpath):
            continue
        for cls in _own_classes(rec.masked):
            domain, inherited = cls.effective_domain()
            classes.append({
                "class": cls.qualified_name(),
                "kind": cls.kind,
                "file": rec.relpath.replace(os.sep, "/"),
                "line": cls.head_line,
                "domain": domain,
                "inherited": inherited,
                "mutable_members": len(cls.mutable_members()),
            })
    classes.sort(key=lambda c: (c["file"], c["line"], c["class"]))
    return {
        "version": 1,
        "generator": "detlint --emit-ownership",
        "domains": OWN_DOMAINS,
        "classes": classes,
    }


# --- tree context & cross-file rules (ERR-002 / ERR-003) ------------


ERROR_CLASS_DECL = re.compile(
    r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?:\s*"
    r"(?:public\s+|private\s+|protected\s+)?SimError\b")
ERROR_CODE_DECL = re.compile(
    r"\bstatic\s+constexpr\s+int\s+code\s*=\s*(\d+)")
EXIT_CONSTANT = re.compile(
    r"\bconstexpr\s+int\s+(exit\w+)\s*=\s*(\d+)")


@dataclass
class TreeContext:
    #: SimError subclass name -> (exit code, line in errors.hh)
    error_classes: dict = dataclass_field(default_factory=dict)
    #: named exit constants (exitCampaignPartial...) -> value
    exit_constants: dict = dataclass_field(default_factory=dict)
    #: names of double/float data members across src/ headers
    float_members: set = dataclass_field(default_factory=set)

    def known_codes(self):
        return (BUILTIN_EXIT_CODES |
                {c for c, _ in self.error_classes.values()} |
                set(self.exit_constants.values()))


def build_tree_context(records) -> TreeContext:
    ctx = TreeContext()
    by_path = {r.relpath.replace(os.sep, "/"): r for r in records}
    errors_hh = by_path.get(ERRORS_HH)
    if errors_hh is not None:
        text = errors_hh.stripped
        decls = list(ERROR_CLASS_DECL.finditer(text))
        for idx, m in enumerate(decls):
            seg_end = (decls[idx + 1].start()
                       if idx + 1 < len(decls) else len(text))
            cm = ERROR_CODE_DECL.search(text, m.end(), seg_end)
            code = int(cm.group(1)) if cm else -1
            ctx.error_classes[m.group(1)] = (
                code, line_of(text, m.start()))
    for rec in records:
        for m in EXIT_CONSTANT.finditer(rec.stripped):
            ctx.exit_constants[m.group(1)] = int(m.group(2))
        if rec.relpath.endswith(HEADER_EXTENSIONS) and \
                rec.relpath.replace(os.sep, "/").startswith("src/"):
            for cls in parse_classes(rec.masked):
                for mem in cls.members:
                    if mem.is_float:
                        ctx.float_members.add(mem.name)
    return ctx


def check_err002(ctx: TreeContext, records):
    """Every SimError class maps to an exit code in errors.cc, and
    every raiseError<E> in the tree names a declared class."""
    by_path = {r.relpath.replace(os.sep, "/"): r for r in records}
    errors_cc = by_path.get(ERRORS_CC)
    if ctx.error_classes and errors_cc is not None:
        cc = errors_cc.stripped
        for name, (code, line) in sorted(ctx.error_classes.items()):
            if code < 0:
                yield Finding(
                    ERRORS_HH, line, "ERR-002",
                    f"SimError class '{name}' declares no "
                    "'static constexpr int code'; the exit-code "
                    "taxonomy needs one")
                continue
            if not re.search(r"\breturn\s+" + name + r"::code\b", cc):
                yield Finding(
                    ERRORS_HH, line, "ERR-002",
                    f"SimError class '{name}' has no exitCode() "
                    f"mapping ('return {name}::code;') in "
                    f"{ERRORS_CC}")
            if not re.search(r"\bcase\s+" + name + r"::code\b", cc):
                yield Finding(
                    ERRORS_HH, line, "ERR-002",
                    f"SimError class '{name}' has no kind-name "
                    f"mapping ('case {name}::code:') in {ERRORS_CC}; "
                    "the supervisor cannot classify its dead "
                    "children")
    if not ctx.error_classes:
        return
    for rec in records:
        for m in RAISE_ERROR.finditer(rec.stripped):
            name = m.group(1)
            if name in ctx.error_classes or not name[0].isupper():
                continue  # template params (E...) stay lowercase
            yield Finding(
                rec.relpath.replace(os.sep, "/"),
                line_of(rec.stripped, m.start()), "ERR-002",
                f"raiseError<{name}> names no SimError class "
                f"declared in {ERRORS_HH}; it would not land in the "
                "exit-code taxonomy")


def _split_top_commas(s: str):
    """Split on commas at paren/brace/bracket/angle depth 0, string-
    literal aware (string contents are intact in this text)."""
    parts, depth, start = [], 0, 0
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        if c in "\"'":
            q = c
            i += 1
            while i < n and s[i] != q:
                i += 2 if s[i] == "\\" else 1
        elif c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<" and i + 1 < n and s[i + 1] != "<" and \
                (i == 0 or s[i - 1] not in "<>"):
            pass  # angle depth is unreliable here; parens dominate
        elif c == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
        i += 1
    parts.append(s[start:])
    return parts


def _string_contents(s: str) -> str:
    return "".join(re.findall(r'"((?:[^"\\]|\\.)*)"', s))


def _doc_codes(doc: str):
    """Exit codes named by a documentation string; 'a..b' ranges are
    expanded."""
    codes = set()
    for m in re.finditer(r"\b(\d+)\s*\.\.\s*(\d+)\b", doc):
        lo, hi = int(m.group(1)), int(m.group(2))
        if lo <= hi <= lo + 64:
            codes.update(range(lo, hi + 1))
    doc = re.sub(r"\b\d+\s*\.\.\s*\d+\b", " ", doc)
    codes.update(int(x) for x in re.findall(r"\b\d+\b", doc))
    return codes


def _match_paren(text: str, open_pos: int) -> int:
    """Index just past the parenthesis group opening at open_pos
    (string-aware)."""
    depth, i, n = 0, open_pos, len(text)
    while i < n:
        c = text[i]
        if c in "\"'":
            q = c
            i += 1
            while i < n and text[i] != q:
                i += 2 if text[i] == "\\" else 1
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def parse_cli_verbs(text_keep: str):
    """(verb name -> (documented codes, line, resolvable)) from the
    cli_verbs.cc registry, resolving shared exit strings (exitBasic
    etc.) and literal concatenation."""
    named = {}
    for m in re.finditer(
            r"const\s+char\s*\*\s*(exit\w+)\s*=\s*"
            r"((?:\"(?:[^\"\\]|\\.)*\"\s*)+);", text_keep):
        named[m.group(1)] = _string_contents(m.group(2))
    verbs = {}
    for m in re.finditer(r"\bverbs\s*\.\s*push_back\s*\(",
                         text_keep):
        open_pos = m.end() - 1
        end = _match_paren(text_keep, open_pos)
        inner = text_keep[open_pos + 1:end - 1].strip()
        if inner.startswith("{") and inner.endswith("}"):
            inner = inner[1:-1]
        parts = _split_top_commas(inner)
        if len(parts) < 2:
            continue
        name = _string_contents(parts[0])
        if not name:
            continue
        last = parts[-1].strip()
        doc = _string_contents(last)
        resolvable = True
        if not doc:
            ident = last.split("+")[0].strip()
            if ident in named:
                doc = named[ident]
            else:
                resolvable = False
        verbs[name] = (_doc_codes(doc),
                       line_of(text_keep, m.start()), resolvable)
    return verbs


def _find_int_functions(text_keep: str):
    """name -> body for `int name(...) { ... }` definitions."""
    bodies = {}
    for m in re.finditer(r"\bint\s+(\w+)\s*\(", text_keep):
        after_params = _match_paren(text_keep, m.end() - 1)
        j = after_params
        n = len(text_keep)
        while j < n and text_keep[j].isspace():
            j += 1
        if j >= n or text_keep[j] != "{":
            continue
        depth = 0
        k = j
        while k < n:
            c = text_keep[k]
            if c in "\"'":
                q = c
                k += 1
                while k < n and text_keep[k] != q:
                    k += 2 if text_keep[k] == "\\" else 1
            elif c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        bodies[m.group(1)] = text_keep[j:k + 1]
    return bodies


def _split_ternary(expr: str):
    """('cond', 'then', 'else') for a top-level ?: or None."""
    depth = 0
    i, n = 0, len(expr)
    qpos = -1
    while i < n:
        c = expr[i]
        if c in "\"'":
            q = c
            i += 1
            while i < n and expr[i] != q:
                i += 2 if expr[i] == "\\" else 1
        elif c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "?" and depth == 0 and qpos < 0:
            qpos = i
        elif c == ":" and depth == 0 and qpos >= 0:
            if (i + 1 < n and expr[i + 1] == ":") or \
                    (i > 0 and expr[i - 1] == ":"):
                i += 1
                continue
            return (expr[:qpos], expr[qpos + 1:i], expr[i + 1:])
        i += 1
    return None


def _reachable_codes(expr: str, bodies, ctx: TreeContext,
                     depth: int = 0):
    """Exit codes statically resolvable from a `return` expression:
    integer literals, ?: arms, named exit constants, one-level local
    helper expansion, and expectedExitCode() (the fault harness's
    SimError raw path). Unresolvable expressions contribute nothing —
    the check under-approximates rather than guessing."""
    expr = expr.strip()
    if re.fullmatch(r"\d+", expr):
        return {int(expr)}
    tern = _split_ternary(expr)
    if tern is not None:
        return (_reachable_codes(tern[1], bodies, ctx, depth) |
                _reachable_codes(tern[2], bodies, ctx, depth))
    m = re.fullmatch(r"[\w:]*?(\w+)", expr)
    if m and m.group(1) in ctx.exit_constants:
        return {ctx.exit_constants[m.group(1)]}
    m = re.fullmatch(r"(?:[\w:]+::)?(\w+)\s*\(.*\)", expr,
                     re.DOTALL)
    if m:
        callee = m.group(1)
        if callee == "expectedExitCode":
            return {c for c, _ in ctx.error_classes.values()}
        if callee in bodies and depth < 2:
            return _body_codes(bodies[callee], bodies, ctx,
                               depth + 1)
    return set()


def _body_codes(body: str, bodies, ctx: TreeContext,
                depth: int = 0):
    codes = set()
    for m in re.finditer(r"\breturn\s+([^;]+);", body):
        codes |= _reachable_codes(m.group(1), bodies, ctx, depth)
    for m in RAISE_ERROR.finditer(body):
        info = ctx.error_classes.get(m.group(1))
        if info:
            codes.add(info[0])
    return codes


CLI_DISPATCH = re.compile(
    r"if\s*\(\s*cmd\s*==\s*\"([\w-]+)\"\s*\)\s*return\s+(\w+)\s*\(")


def check_err003(ctx: TreeContext, records):
    """Cross-check each CLI verb's documented exit codes against the
    codes statically reachable from its implementation."""
    by_path = {r.relpath.replace(os.sep, "/"): r for r in records}
    verbs_rec = by_path.get(CLI_VERBS_CC)
    main_rec = by_path.get(CLI_MAIN_CC)
    if verbs_rec is None or main_rec is None:
        return
    verbs = parse_cli_verbs(verbs_rec.stripped_keep)
    bodies = _find_int_functions(main_rec.stripped_keep)
    dispatch = dict(CLI_DISPATCH.findall(main_rec.stripped_keep))
    known = ctx.known_codes()
    for verb, (documented, line, resolvable) in sorted(
            verbs.items()):
        if not resolvable:
            yield Finding(
                CLI_VERBS_CC, line, "ERR-003",
                f"verb '{verb}': exit-code documentation is not a "
                "string literal or known shared exit string; the "
                "static cross-check cannot read it")
            continue
        for code in sorted(documented - known):
            yield Finding(
                CLI_VERBS_CC, line, "ERR-003",
                f"verb '{verb}' documents exit code {code}, which "
                "maps to no SimError class or named exit constant; "
                "fix the doc or extend the taxonomy")
        impl = dispatch.get(verb)
        if impl is None or impl not in bodies:
            continue  # inline verbs (help) have no single body
        reachable = _body_codes(bodies[impl], bodies, ctx)
        for code in sorted((reachable - BUILTIN_EXIT_CODES) -
                           documented):
            names = [n for n, (c, _) in ctx.error_classes.items()
                     if c == code]
            names += [n for n, c in ctx.exit_constants.items()
                      if c == code]
            via = f" ({'/'.join(sorted(set(names)))})" if names \
                else ""
            yield Finding(
                CLI_VERBS_CC, line, "ERR-003",
                f"verb '{verb}' can exit with code {code}{via} but "
                "its documented exit codes omit it; scripted callers "
                "rely on this list")
    for verb in sorted(set(dispatch) - set(verbs)):
        rec_line = line_of(
            main_rec.stripped_keep,
            main_rec.stripped_keep.find(f'"{verb}"'))
        yield Finding(
            CLI_MAIN_CC, rec_line, "ERR-003",
            f"verb '{verb}' is dispatched in the CLI but has no "
            f"entry in the verb registry ({CLI_VERBS_CC}); its exit "
            "codes are undocumented")


# --- libclang backend (optional cross-check) ------------------------


def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def check_file_libclang(root, relpath, compile_db, directives):
    """AST-based member checks (DET-004 / CONC-001). Best-effort:
    any libclang failure returns None so the caller falls back to
    the token backend."""
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        args = ["-std=c++20", f"-I{os.path.join(root, 'src')}"]
        if compile_db:
            try:
                db = ci.CompilationDatabase.fromDirectory(compile_db)
                cmds = db.getCompileCommands(
                    os.path.join(root, relpath))
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:-1]
                            if a != "-c" and not a.endswith(".cc")]
            except Exception:
                pass
        tu = index.parse(os.path.join(root, relpath), args=args)
        findings = []
        raw_lines = None

        def field_has_annotation(cursor):
            nonlocal raw_lines
            if raw_lines is None:
                with open(os.path.join(root, relpath),
                          encoding="utf-8",
                          errors="replace") as f:
                    raw_lines = f.read().splitlines()
            ln = cursor.location.line
            seg = " ".join(raw_lines[max(0, ln - 1):ln + 1])
            return any(m in seg for m in ANNOTATION_MACROS)

        def record_is_aggregate(cursor):
            import clang.cindex as cci
            for ch in cursor.get_children():
                if ch.kind in (cci.CursorKind.CONSTRUCTOR,
                               cci.CursorKind.DESTRUCTOR):
                    return False
            return True

        def walk(cursor):
            import clang.cindex as cci
            for ch in cursor.get_children():
                loc = ch.location
                if (loc.file and
                        os.path.abspath(str(loc.file)) ==
                        os.path.abspath(
                            os.path.join(root, relpath))):
                    if ch.kind in (cci.CursorKind.STRUCT_DECL,
                                   cci.CursorKind.CLASS_DECL) and \
                            ch.is_definition():
                        aggregate = record_is_aggregate(ch)
                        for f_ in ch.get_children():
                            if f_.kind != cci.CursorKind.FIELD_DECL:
                                continue
                            t = f_.type
                            scalarish = t.kind in (
                                cci.TypeKind.BOOL, cci.TypeKind.INT,
                                cci.TypeKind.UINT, cci.TypeKind.LONG,
                                cci.TypeKind.ULONG,
                                cci.TypeKind.LONGLONG,
                                cci.TypeKind.ULONGLONG,
                                cci.TypeKind.SHORT,
                                cci.TypeKind.USHORT,
                                cci.TypeKind.CHAR_S,
                                cci.TypeKind.UCHAR,
                                cci.TypeKind.FLOAT,
                                cci.TypeKind.DOUBLE,
                                cci.TypeKind.POINTER,
                                cci.TypeKind.ENUM,
                                cci.TypeKind.TYPEDEF,
                            )
                            has_init = any(
                                True for _ in f_.get_children())
                            if (aggregate and scalarish and
                                    not has_init and
                                    rule_applies("DET-004",
                                                 relpath,
                                                 directives)):
                                findings.append(Finding(
                                    relpath, f_.location.line,
                                    "DET-004",
                                    f"scalar member "
                                    f"'{ch.spelling}::{f_.spelling}'"
                                    " of an aggregate has no "
                                    "initializer (libclang)"))
                            if (directives.conc_optin and
                                    not field_has_annotation(f_)):
                                findings.append(Finding(
                                    relpath, f_.location.line,
                                    "CONC-001",
                                    f"mutable member "
                                    f"'{ch.spelling}::{f_.spelling}'"
                                    " lacks a capability/ownership "
                                    "annotation (libclang)"))
                walk(ch)

        walk(tu.cursor)
        return findings
    except Exception:
        return None


# --- scoping --------------------------------------------------------


def rule_applies(rule: str, relpath: str,
                 directives: FileDirectives | None = None) -> bool:
    p = relpath.replace(os.sep, "/")
    is_header = p.endswith(HEADER_EXTENSIONS)
    if rule == "DET-001":
        return p.startswith(DET001_DIRS)
    if rule == "DET-002":
        return p not in DET002_WHITELIST
    if rule == "DET-003":
        return p.startswith(DET003_PREFIXES)
    if rule == "DET-004":
        return p.startswith(DET004_PREFIXES) and is_header
    if rule == "CONC-001":
        return directives is not None and directives.conc_optin
    if rule == "FF-001":
        return p.startswith(FF_DIRS) and is_header
    if rule == "FF-002":
        return p.startswith(FF_DIRS) and not is_header
    if rule == "ERR-001":
        return p.startswith(ERR001_SCOPE) and \
            p not in ERR001_WHITELIST
    if rule == "STAT-001":
        return p.startswith(STAT001_PREFIXES) and \
            p not in STAT001_WHITELIST
    if rule == "STAT-002":
        return p.startswith(STAT002_PREFIXES)
    if rule in ("OWN-001", "OWN-002"):
        return _own_in_scope(p)
    return False


# --- file records & tree scan ---------------------------------------


@dataclass
class FileRecord:
    relpath: str
    raw: str            # CRLF-normalized source
    directives: FileDirectives
    stripped: str       # comments+strings blanked, directives blanked
    stripped_keep: str  # comments blanked, strings kept
    masked: str         # stripped + annotation macros masked


def load_record(root: str, relpath: str) -> FileRecord | None:
    full = os.path.join(root, relpath)
    try:
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"detlint: cannot read {relpath}: {e}",
              file=sys.stderr)
        return None
    raw = raw.replace("\r\n", "\n")
    stripped = strip_preprocessor(strip_comments_and_strings(raw))
    stripped_keep = strip_preprocessor(
        strip_comments_and_strings(raw, keep_strings=True))
    return FileRecord(relpath=relpath, raw=raw,
                      directives=scan_directives(raw),
                      stripped=stripped,
                      stripped_keep=stripped_keep,
                      masked=_mask_annotations(stripped))


def check_record(rec: FileRecord, root: str, backend: str,
                 compile_db, ctx: TreeContext):
    """All per-file rules for one record (unfiltered by allow()
    directives; the caller filters)."""
    relpath, directives = rec.relpath, rec.directives
    findings = []
    if rule_applies("DET-001", relpath):
        findings.extend(check_det001(relpath, rec.stripped))
    if rule_applies("DET-002", relpath):
        findings.extend(check_det002(relpath, rec.stripped))
    if rule_applies("DET-003", relpath):
        findings.extend(check_det003(relpath, rec.stripped))
    if rule_applies("ERR-001", relpath):
        findings.extend(check_err001(relpath, rec.stripped))
    if rule_applies("STAT-001", relpath):
        findings.extend(check_stat001(relpath, rec.stripped,
                                      ctx.float_members))
    if rule_applies("STAT-002", relpath):
        findings.extend(check_stat002(relpath, rec.stripped_keep))
    if rule_applies("FF-001", relpath):
        findings.extend(check_ff001(relpath, rec.masked))
    if rule_applies("FF-002", relpath):
        findings.extend(check_ff002(relpath, rec.stripped))
    if rule_applies("OWN-001", relpath):
        findings.extend(check_own(relpath, rec.masked))

    member_findings = None
    if backend == "libclang":
        member_findings = check_file_libclang(
            root, relpath, compile_db, directives)
        if member_findings is None:
            print(f"detlint: libclang failed on {relpath}; "
                  "falling back to the token backend",
                  file=sys.stderr)
    if member_findings is None:
        member_findings = []
        if rule_applies("DET-004", relpath):
            member_findings.extend(check_det004(relpath, rec.masked))
        if rule_applies("CONC-001", relpath, directives):
            member_findings.extend(
                check_conc001(relpath, rec.masked))
    findings.extend(member_findings)
    return findings


def scan_tree(root: str, relpaths, backend: str, compile_db):
    """Load every file, run per-file rules, then the cross-file
    rules. Returns (findings, records); findings are filtered
    through skip-file/allow directives and sorted."""
    records = []
    for rp in relpaths:
        rec = load_record(root, rp)
        if rec is not None:
            records.append(rec)
    ctx = build_tree_context(records)
    by_path = {r.relpath.replace(os.sep, "/"): r for r in records}

    findings = []
    for rec in records:
        if rec.directives.skip_file:
            continue
        findings.extend(check_record(rec, root, backend,
                                     compile_db, ctx))
    findings.extend(check_err002(ctx, records))
    findings.extend(check_err003(ctx, records))

    def allowed(f: Finding) -> bool:
        rec = by_path.get(f.path.replace(os.sep, "/"))
        return rec is not None and \
            rec.directives.is_allowed(f.rule, f.line)

    findings = [f for f in findings if not allowed(f)]
    findings.sort(key=Finding.sort_key)
    return findings, records


def check_file(root: str, relpath: str, backend: str,
               compile_db):
    """Single-file convenience entry point (per-file rules only;
    cross-file rules need scan_tree)."""
    findings, _ = scan_tree(root, [relpath], backend, compile_db)
    return findings


def discover_files(root: str):
    out = []
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            # Never descend into build or fixture trees.
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", "fixtures",
                                        "__pycache__")]
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, fn), root))
    return out


# --- autofix (--fix) ------------------------------------------------


_CLASS_KEYWORD = re.compile(r"\b(class|struct)\b(?![^<]*>)")


def _fix_line(kind, payload, content: str) -> str | None:
    """Apply one fix to a line's content (no EOL); None = not
    fixable here."""
    if kind == "init":
        if "=" in content or ";" not in content:
            return None
        semi = content.find(";")
        return content[:semi] + payload + content[semi:]
    if kind == "member-tag":
        if "SOE_THREAD_OWNED" in content or \
                "SOE_GUARDED_BY" in content:
            return None
        tag = f" SOE_THREAD_OWNED({OWN_PLACEHOLDER})"
        if " = " in content:
            return content.replace(" = ", tag + " = ", 1)
        if ";" in content:
            semi = content.find(";")
            return content[:semi] + tag + content[semi:]
        return None
    if kind == "class-tag":
        if "SOE_THREAD_OWNED" in content:
            return None
        m = _CLASS_KEYWORD.search(content)
        if not m:
            return None
        return (content[:m.end()] +
                f" SOE_THREAD_OWNED({OWN_PLACEHOLDER})" +
                content[m.end():])
    return None


def apply_fixes(root: str, findings):
    """Rewrite mechanically fixable findings in place. Line endings
    of edited files are preserved. Returns (fixed, unfixable)."""
    fixed = unfixable = 0
    by_path = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    for path, flist in sorted(by_path.items()):
        full = os.path.join(root, path)
        try:
            with open(full, encoding="utf-8", newline="") as fh:
                lines = fh.read().splitlines(keepends=True)
        except OSError:
            unfixable += len([f for f in flist if f.fixhint])
            continue
        changed = False
        # Bottom-up so earlier line numbers stay valid.
        for f in sorted(flist, key=lambda x: -x.line):
            if not f.fixhint:
                unfixable += 1
                continue
            kind, *rest = f.fixhint
            payload = rest[0] if rest else None
            # class-tag: the head line may be a `template <...>`
            # line; scan forward for the class keyword.
            target = None
            if kind == "class-tag":
                for ln in range(f.line, min(f.line + 5,
                                            len(lines) + 1)):
                    raw_line = lines[ln - 1]
                    content = raw_line.rstrip("\r\n")
                    if _CLASS_KEYWORD.search(content):
                        target = ln
                        break
            else:
                target = f.line
            if target is None or target > len(lines):
                unfixable += 1
                continue
            raw_line = lines[target - 1]
            eol = raw_line[len(raw_line.rstrip("\r\n")):]
            content = raw_line.rstrip("\r\n")
            new_content = _fix_line(kind, payload, content)
            if new_content is None:
                unfixable += 1
                continue
            lines[target - 1] = new_content + eol
            changed = True
            fixed += 1
        if changed:
            with open(full, "w", encoding="utf-8",
                      newline="") as fh:
                fh.write("".join(lines))
    return fixed, unfixable


# --- baseline & reports ---------------------------------------------


def load_baseline(path: str):
    entries = set()
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_json_report(path, root, backend, findings, new, fixed):
    report = {
        "tool": "detlint",
        "root": os.path.abspath(root),
        "backend": backend,
        "rules": RULES,
        "counts": {
            "total": len(findings),
            "new": len(new),
            "baseline_fixed": len(fixed),
        },
        "findings": [
            {"path": f.path.replace(os.sep, "/"), "line": f.line,
             "rule": f.rule, "message": f.message}
            for f in findings
        ],
        "new": list(new),
        "baseline_fixed": list(fixed),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def write_step_summary(new, fixed):
    """Baseline-drift diff for the CI job summary
    ($GITHUB_STEP_SUMMARY), so a failing static-analysis job shows
    the drift without digging through logs."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or (not new and not fixed):
        return
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("## detlint baseline drift\n\n")
            if new:
                f.write(f"**{len(new)} new finding(s)** not in the "
                        "baseline:\n\n```diff\n")
                for line in new:
                    f.write(f"+ {line}\n")
                f.write("```\n\n")
            if fixed:
                f.write(f"**{len(fixed)} baseline entr(y/ies) no "
                        "longer reported** (remove them):\n\n"
                        "```diff\n")
                for line in fixed:
                    f.write(f"- {line}\n")
                f.write("```\n\n")
    except OSError:
        pass


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="detlint",
        description="cross-layer contract checker for soefair "
                    "(determinism, fast-forward, error-taxonomy, "
                    "stats, PDES ownership)")
    ap.add_argument("files", nargs="*",
                    help="files to check (default: the whole tree; "
                         "cross-file rules need their anchor files "
                         "in the set)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels up "
                         "from this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file of grandfathered findings")
    ap.add_argument("--backend",
                    choices=("auto", "text", "libclang"),
                    default="auto",
                    help="analysis backend (auto prefers libclang "
                         "when importable)")
    ap.add_argument("--compile-db", default=None,
                    help="directory holding compile_commands.json "
                         "(libclang backend)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with current findings")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="write findings as machine-readable JSON")
    ap.add_argument("--emit-ownership", default=None, metavar="PATH",
                    help="write the PDES ownership manifest "
                         "(sharding domain per mutable class)")
    ap.add_argument("--fix", action="store_true",
                    help="rewrite mechanically fixable findings in "
                         "place (DET-004 initializers, missing "
                         "SOE_THREAD_OWNED tags)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in RULES.items():
            print(f"{rid}  {desc}")
        return 0

    root = args.root or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print(f"detlint: root '{root}' is not a directory",
              file=sys.stderr)
        return 2

    backend = args.backend
    if backend == "auto":
        backend = "libclang" if libclang_available() else "text"
    if backend == "libclang" and not libclang_available():
        print("detlint: libclang backend requested but the 'clang' "
              "python package is not importable", file=sys.stderr)
        return 2

    if args.files:
        relpaths = [os.path.relpath(os.path.abspath(f), root)
                    for f in args.files]
    else:
        relpaths = discover_files(root)

    findings, records = scan_tree(root, relpaths, backend,
                                  args.compile_db)

    if args.emit_ownership:
        manifest = ownership_manifest(records)
        os.makedirs(os.path.dirname(
            os.path.abspath(args.emit_ownership)), exist_ok=True)
        with open(args.emit_ownership, "w",
                  encoding="utf-8") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"detlint: ownership manifest with "
              f"{len(manifest['classes'])} class(es) -> "
              f"{args.emit_ownership}")

    if args.fix:
        fixed, unfixable = apply_fixes(root, findings)
        print(f"detlint: fixed {fixed} finding(s); "
              f"{unfixable} not auto-fixable")
        return 0

    formatted = [f.format() for f in findings]

    if args.update_baseline:
        if not args.baseline:
            print("detlint: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write("# detlint baseline: grandfathered findings, one "
                    "per line.\n# Fix findings rather than adding "
                    "here; remove lines as they are fixed.\n")
            for line in formatted:
                f.write(line + "\n")
        print(f"detlint: baseline rewritten with {len(formatted)} "
              f"finding(s)")
        return 0

    baseline = load_baseline(args.baseline)
    new = [line for line in formatted if line not in baseline]
    fixed = sorted(baseline - set(formatted))

    if args.json:
        write_json_report(args.json, root, backend, findings, new,
                          fixed)
    write_step_summary(new, fixed)

    if fixed:
        print("detlint: baseline entries no longer reported "
              "(consider removing):")
        for line in fixed:
            print(f"  {line}")
    if new:
        print("detlint: NEW findings not in the baseline:",
              file=sys.stderr)
        for line in new:
            print(line, file=sys.stderr)
        print("detlint: fix them or (sparingly) baseline them",
              file=sys.stderr)
        return 1
    print(f"detlint[{backend}]: clean ({len(formatted)} finding(s), "
          f"all baselined; {len(relpaths)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
