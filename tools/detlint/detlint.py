#!/usr/bin/env python3
"""detlint - determinism & concurrency static analysis for soefair.

Enforces the simulator's determinism and concurrency contracts as
named, baselined rules (see docs/correctness.md, "Determinism &
concurrency contracts"):

  DET-001  no wall-clock / rand() / locale / PID-dependent values in
           model code (src/{sim,cpu,mem,soe,workload}); timing belongs
           in the harness supervisor and bench/perf_* only.
  DET-002  no std::getenv outside the single whitelisted accessor
           (src/harness/env.cc).
  DET-003  no unordered containers or pointer-keyed ordered containers
           in code that feeds statistics::, payload codecs or CSV
           emitters (iteration order would be hash- or
           allocation-address-dependent).
  DET-004  no uninitialized scalar/pointer members in aggregate
           structs declared in src/ headers (state reachable from
           System / SoeEngine must not depend on indeterminate reads).
  CONC-001 in files opted in with `// detlint: conc-optin`, every
           mutable data member must carry a capability annotation
           (SOE_GUARDED_BY / SOE_PT_GUARDED_BY) or an ownership tag
           (SOE_THREAD_OWNED) from src/sim/annotations.hh.

Backends
--------
The default backend is a dependency-free token analysis: comments and
string literals are stripped (line-preserving), then rule matchers run
over the token text; DET-004 / CONC-001 use a brace-tracking member
parser. When the `clang` Python package (libclang) is importable, the
member-level rules are additionally cross-checked on the real AST via
`--backend libclang` using the compile database (--compile-db).
Documented clang-query one-liners for manual cross-checks live in
tools/detlint/README.md.

Suppressions
------------
  // detlint: allow(DET-002)       suppress rule(s) on this line
  // NOLINT(DET-004)               same, clang-tidy spelling
  // detlint: skip-file            exempt the whole file
  // detlint: conc-optin           opt the file into CONC-001

Exit status: 0 clean (or all findings baselined), 1 new findings,
2 usage/setup error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field as dataclass_field

RULES = {
    "DET-001": "no wall-clock/rand/locale/PID values in model code",
    "DET-002": "no std::getenv outside the whitelisted accessor",
    "DET-003": "no unordered/pointer-keyed containers feeding "
               "deterministic output",
    "DET-004": "no uninitialized scalar members in aggregate structs",
    "CONC-001": "mutable members need capability/ownership "
                "annotations in opted-in files",
}

# --- rule scopes (paths are '/'-separated, relative to the repo) ----

DET001_DIRS = ("src/sim/", "src/cpu/", "src/mem/", "src/soe/",
               "src/workload/")
DET002_WHITELIST = ("src/harness/env.cc",)
DET003_PREFIXES = ("src/stats/", "src/harness/", "bench/",
                   "src/core/metrics")
DET004_PREFIXES = ("src/",)
SCAN_DIRS = ("src", "bench", "tools", "tests", "examples")
CXX_EXTENSIONS = (".cc", ".hh", ".h", ".cpp", ".hpp")

ANNOTATION_MACROS = (
    "SOE_GUARDED_BY",
    "SOE_PT_GUARDED_BY",
    "SOE_THREAD_OWNED",
)

DET001_PATTERNS = [
    (re.compile(r"\b(time|clock|clock_gettime|gettimeofday|"
                r"localtime|localtime_r|gmtime|gmtime_r|strftime|"
                r"mktime|timespec_get)\s*\("),
     "wall-clock read"),
    (re.compile(r"\bstd::chrono\b"), "std::chrono clock"),
    (re.compile(r"\b(system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "chrono clock type"),
    (re.compile(r"\b(rand|srand|random|srandom|drand48|lrand48|"
                r"mrand48|rand_r)\s*\("),
     "libc PRNG"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\b(getpid|gettid|pthread_self)\s*\("),
     "process/thread id"),
    (re.compile(r"\b(setlocale|localeconv)\s*\("), "locale call"),
    (re.compile(r"\bstd::locale\b"), "std::locale"),
]

DET002_PATTERN = re.compile(r"\bgetenv\s*\(")

DET003_UNORDERED = re.compile(
    r"\b(?:std::)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)\s*<")
DET003_PTR_KEYED = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<\s*[A-Za-z_][\w:<>\s]*?"
    r"\*\s*[,>]")

SCALAR_TYPE = re.compile(
    r"^(?:(?:std::)?(?:u?int(?:8|16|32|64|ptr|max)?_t|size_t|"
    r"ptrdiff_t)|bool|char|short|int|long|unsigned|signed|float|"
    r"double|Tick|Addr|Cycles|ThreadID)\b")

IDENT = re.compile(r"[A-Za-z_]\w*")

ALLOW_DIRECTIVE = re.compile(
    r"(?:detlint:\s*allow|NOLINT)\(([^)]*)\)")
SKIP_FILE_DIRECTIVE = "detlint: skip-file"
CONC_OPTIN_DIRECTIVE = "detlint: conc-optin"


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


@dataclass
class FileDirectives:
    skip_file: bool = False
    conc_optin: bool = False
    #: line number -> set of rule ids allowed (empty set = all)
    allowed: dict = dataclass_field(default_factory=dict)

    def is_allowed(self, rule: str, line: int) -> bool:
        if self.skip_file:
            return True
        rules = self.allowed.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


def scan_directives(raw: str) -> FileDirectives:
    d = FileDirectives()
    if SKIP_FILE_DIRECTIVE in raw:
        d.skip_file = True
    if CONC_OPTIN_DIRECTIVE in raw:
        d.conc_optin = True
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_DIRECTIVE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")
                     if r.strip()}
            d.allowed[lineno] = rules
    return d


def strip_comments_and_strings(raw: str) -> str:
    """Blank out comments, string and char literals, preserving the
    position of every remaining character (newlines survive)."""
    out = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and raw[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (raw[i] == "*" and i + 1 < n and
                                 raw[i + 1] == "/"):
                out.append("\n" if raw[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if (quote == '"' and i >= 1 and raw[i - 1] == "R" and
                    (i < 2 or not raw[i - 2].isalnum())):
                m = re.match(r'R"([^(\s]*)\(', raw[i - 1:])
                if m:
                    end = raw.find(f'){m.group(1)}"', i)
                    if end < 0:
                        end = n
                    else:
                        end += len(m.group(1)) + 2
                    seg = raw[i:end]
                    out.append("".join(
                        "\n" if ch == "\n" else " " for ch in seg))
                    i = end
                    continue
            out.append(" ")
            i += 1
            while i < n and raw[i] != quote:
                if raw[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if raw[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# --- token rules ----------------------------------------------------


def check_det001(path: str, text: str):
    seen_lines = set()
    for pattern, label in DET001_PATTERNS:
        for m in pattern.finditer(text):
            # One finding per line: overlapping patterns (e.g.
            # 'std::chrono' and 'steady_clock') describe one offense.
            line = line_of(text, m.start())
            if line in seen_lines:
                continue
            seen_lines.add(line)
            yield Finding(
                path, line, "DET-001",
                f"forbidden non-deterministic source '{m.group(0).strip()}'"
                f" ({label}) in model code; timing belongs in "
                "src/harness or bench/perf_*")


def check_det002(path: str, text: str):
    for m in DET002_PATTERN.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-002",
            "getenv outside the whitelisted accessor; route the read "
            "through harness/env.hh")


def check_det003(path: str, text: str):
    for m in DET003_UNORDERED.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-003",
            f"unordered container '{m.group(1)}' in deterministic-"
            "output code (hash/address-dependent iteration order); "
            "use an ordered container or sort before emitting")
    for m in DET003_PTR_KEYED.finditer(text):
        yield Finding(
            path, line_of(text, m.start()), "DET-003",
            f"pointer-keyed 'std::{m.group(1)}' in deterministic-"
            "output code (allocation-address-dependent order); key "
            "by a stable id instead")


# --- member parser (DET-004 / CONC-001) -----------------------------


@dataclass
class Member:
    name: str
    line: int
    chunk: str
    has_init: bool
    is_scalar: bool
    is_pointer: bool
    is_static: bool
    is_const: bool
    is_reference: bool
    is_bitfield: bool
    has_annotation: bool


@dataclass
class ClassInfo:
    name: str
    kind: str  # struct | class | union
    line: int
    has_ctor: bool = False
    members: list = dataclass_field(default_factory=list)


_ANN_MARKER = {
    "SOE_GUARDED_BY": "__DETLINT_ANN_GUARDED__",
    "SOE_PT_GUARDED_BY": "__DETLINT_ANN_PTGUARDED__",
    "SOE_THREAD_OWNED": "__DETLINT_ANN_OWNED__",
}


def _mask_annotations(text: str) -> str:
    """Replace annotation macros (and their parenthesized argument)
    with paren-free marker tokens, so '(' detection in the member
    parser is not confused. Newlines inside a masked span are kept so
    line numbers stay stable."""
    def make_repl(marker):
        def repl(m):
            return marker + "\n" * m.group(0).count("\n")
        return repl

    for macro, marker in _ANN_MARKER.items():
        text = re.sub(r"\b" + macro + r"\s*\([^()]*\)",
                      make_repl(marker), text)
    # Mask remaining SOE_* attribute macros (SOE_REQUIRES etc.) the
    # same way so their parens don't look like function declarators.
    text = re.sub(r"\bSOE_[A-Z_]+\s*\([^()]*\)",
                  make_repl("__DETLINT_ANN_OTHER__"), text)
    return text


def strip_preprocessor(text: str) -> str:
    """Blank out preprocessor directives (including backslash
    continuations), preserving newlines. The member parser and the
    token rules both run on directive-free text: macro *definitions*
    are not analyzable as code."""
    out = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def _top_level_positions(s: str, wanted: str):
    """Positions of `wanted` chars at paren/angle/bracket depth 0.
    Angle brackets are only tracked up to the first top-level '='
    (after which '<' is likely a comparison)."""
    depth_paren = depth_angle = depth_bracket = depth_brace = 0
    seen_eq = False
    out = []
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        nxt = s[i + 1] if i + 1 < n else ""
        at_top = (depth_paren == 0 and depth_angle == 0 and
                  depth_bracket == 0 and depth_brace == 0)
        if c in wanted and at_top:
            if c == "=" and (nxt == "=" or (i > 0 and
                                            s[i - 1] in "=<>!+-*/&|^")):
                pass  # comparison/compound, not an initializer
            else:
                out.append(i)
                if c == "=":
                    seen_eq = True
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren = max(0, depth_paren - 1)
        elif c == "[":
            depth_bracket += 1
        elif c == "]":
            depth_bracket = max(0, depth_bracket - 1)
        elif c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace = max(0, depth_brace - 1)
        elif c == "<" and not seen_eq:
            if c == nxt:  # <<
                i += 1
            else:
                depth_angle += 1
        elif c == ">" and not seen_eq:
            if i > 0 and s[i - 1] == "-":  # ->
                pass
            elif c == nxt:  # >>
                depth_angle = max(0, depth_angle - 2)
                i += 1
            else:
                depth_angle = max(0, depth_angle - 1)
        i += 1
    return out


def _normalize_operators(s: str) -> str:
    return re.sub(r"\boperator\s*(\(\)|\[\]|[^\s(]{1,3})",
                  "operator_fn", s)


def _analyze_chunk(chunk: str, line: int, had_brace_init: bool,
                   is_bitfield: bool):
    """Classify one class-scope declaration chunk.

    Returns ('member', Member), ('function', name) or None."""
    s = chunk.strip()
    if not s:
        return None
    if re.match(r"^(using|typedef|friend|template|static_assert|"
                r"enum|namespace|extern|public|private|protected)\b",
                s):
        return None
    if re.match(r"^(class|struct|union)\b[^;]*$", s):
        return None  # forward declaration remnants
    has_annotation = any(m in s for m in _ANN_MARKER.values())
    s_norm = _normalize_operators(s)
    parens = _top_level_positions(s_norm, "(")
    eqs = _top_level_positions(s_norm, "=")
    if parens and (not eqs or parens[0] < eqs[0]):
        before = s_norm[:parens[0]]
        ids = IDENT.findall(before)
        return ("function", ids[-1] if ids else "")
    is_static = bool(re.search(r"\b(static|constexpr|constinit)\b",
                               s_norm))
    declarator_src = s_norm
    # Type/qualifier inspection uses the part before the first '='.
    head = s_norm[:eqs[0]] if eqs else s_norm
    is_const = bool(re.search(r"\bconst\b", head))
    is_reference = "&" in head
    is_pointer = "*" in head
    has_init = bool(eqs) or had_brace_init
    # Name: last identifier of the declarator head, ignoring the
    # annotation markers and array brackets.
    head_clean = head
    for marker in _ANN_MARKER.values():
        head_clean = head_clean.replace(marker, " ")
    head_clean = re.sub(r"\[[^\]]*\]", " ", head_clean)
    ids = IDENT.findall(head_clean)
    if not ids:
        return None
    name = ids[-1]
    # Type text: everything before the member name's last occurrence.
    type_text = head_clean[:head_clean.rfind(name)].strip()
    type_text = re.sub(r"^\s*(mutable|volatile|inline|static|"
                       r"constexpr|constinit|const)\b\s*", "",
                       type_text)
    type_text = re.sub(r"^\s*(mutable|volatile|const)\b\s*", "",
                       type_text)
    is_scalar = bool(SCALAR_TYPE.match(type_text)) and \
        "<" not in type_text
    if not type_text:
        return None  # label or stray token, not a declaration
    return ("member", Member(
        name=name, line=line, chunk=s, has_init=has_init,
        is_scalar=is_scalar, is_pointer=is_pointer,
        is_static=is_static, is_const=is_const,
        is_reference=is_reference, is_bitfield=is_bitfield,
        has_annotation=has_annotation))


def parse_classes(text: str):
    """Brace-tracking scan of (stripped, annotation-masked) C++
    yielding ClassInfo for every class/struct/union body, including
    nested ones."""
    classes = []
    # Scope stack entries: dict(kind=..., cls=ClassInfo or None)
    stack = [{"kind": "top", "cls": None}]
    buf = []
    buf_start = 0  # position where the current chunk began
    had_brace_init = False
    is_bitfield = False
    i, n = 0, len(text)

    def current():
        return stack[-1]

    def flush_chunk(end_pos):
        nonlocal buf, buf_start, had_brace_init, is_bitfield
        scope = current()
        chunk = "".join(buf)
        if scope["kind"] == "class" and scope["cls"] is not None:
            res = _analyze_chunk(chunk, line_of(text, buf_start),
                                 had_brace_init, is_bitfield)
            if res:
                kind, payload = res
                if kind == "member":
                    scope["cls"].members.append(payload)
                elif kind == "function":
                    cls_name = scope["cls"].name
                    if payload == cls_name:
                        scope["cls"].has_ctor = True
        buf = []
        buf_start = end_pos + 1
        had_brace_init = False
        is_bitfield = False

    paren_depth = 0
    angle_depth = 0

    while i < n:
        c = text[i]
        # A chunk starts at its first non-space character; leading
        # whitespace is never buffered, so buf_start (and thus the
        # reported line) always points at real text.
        if not buf:
            if c.isspace():
                i += 1
                continue
            if c not in "{};":
                buf_start = i
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "(":
            paren_depth += 1
            buf.append(c)
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
            buf.append(c)
        elif c == "<" and paren_depth == 0:
            if nxt == "<":
                buf.append("<<")
                i += 1
            else:
                # Heuristic: template bracket if preceded by ident.
                prev = "".join(buf).rstrip()[-1:] if buf else ""
                if prev and (prev.isalnum() or prev in "_>,:"):
                    angle_depth += 1
                buf.append(c)
        elif c == ">" and paren_depth == 0:
            if buf and buf[-1] == "-":
                buf.append(c)
            elif nxt == ">" and angle_depth >= 2:
                angle_depth -= 2
                buf.append(">>")
                i += 1
            else:
                angle_depth = max(0, angle_depth - 1)
                buf.append(c)
        elif c == "{" and paren_depth == 0 and angle_depth == 0:
            chunk = "".join(buf)
            chunk_norm = _normalize_operators(chunk.strip())
            kind = None
            cls = None
            if re.search(r"\bnamespace\b", chunk_norm):
                kind = "namespace"
            elif re.search(r"\benum\b", chunk_norm):
                kind = "enum"
            else:
                cm = list(re.finditer(r"\b(class|struct|union)\b",
                                      chunk_norm))
                parens = _top_level_positions(chunk_norm, "(")
                eqs = _top_level_positions(chunk_norm, "=")
                starts_fn = parens and (not eqs or
                                        parens[0] < eqs[0])
                if cm and not starts_fn:
                    kind = "class"
                    after = chunk_norm[cm[-1].end():]
                    # Name: identifier after the keyword, before any
                    # base-clause colon.
                    after = after.split(":", 1)[0]
                    ids = IDENT.findall(after)
                    # Skip 'final' and masked attribute macros.
                    ids = [x for x in ids if x != "final" and
                           not x.startswith("__DETLINT_ANN")]
                    cname = ids[0] if ids else "<anonymous>"
                    cls = ClassInfo(cname, cm[-1].group(1),
                                    line_of(text, i))
                    classes.append(cls)
                elif starts_fn:
                    kind = "block"
                elif current()["kind"] == "class":
                    # Member brace-initializer: consume to matching
                    # '}' as part of the declaration chunk.
                    depth = 1
                    j = i + 1
                    while j < n and depth:
                        if text[j] == "{":
                            depth += 1
                        elif text[j] == "}":
                            depth -= 1
                        j += 1
                    had_brace_init = True
                    buf.append(" ")
                    i = j
                    continue
                elif current()["kind"] in ("top", "namespace"):
                    kind = "namespace"  # extern "C" etc: transparent
                else:
                    kind = "block"
            if kind == "block":
                # Skip the body wholesale.
                depth = 1
                j = i + 1
                while j < n and depth:
                    if text[j] == "{":
                        depth += 1
                    elif text[j] == "}":
                        depth -= 1
                    j += 1
                # In-class function definition: still counts for
                # constructor detection.
                flush_chunk(j - 1)
                i = j
                continue
            stack.append({"kind": kind, "cls": cls})
            buf = []
            buf_start = i + 1
            had_brace_init = False
            is_bitfield = False
        elif c == "}" and paren_depth == 0:
            flush_chunk(i)
            if len(stack) > 1:
                stack.pop()
        elif c == ";" and paren_depth == 0 and angle_depth == 0:
            flush_chunk(i)
        elif c == ":" and paren_depth == 0 and angle_depth == 0:
            if nxt == ":":
                buf.append("::")
                i += 1
            else:
                stripped = "".join(buf).strip()
                if current()["kind"] == "class" and stripped in (
                        "public", "private", "protected"):
                    buf = []
                    buf_start = i + 1
                elif (current()["kind"] == "class" and stripped and
                      "(" not in stripped and "=" not in stripped and
                      not re.search(r"\b(class|struct|union|enum)\b",
                                    stripped)):
                    is_bitfield = True
                    buf.append(c)
                else:
                    buf.append(c)
        else:
            buf.append(c)
        i += 1
    return classes


def check_det004(path: str, text: str):
    for cls in parse_classes(text):
        if cls.kind == "union" or cls.has_ctor:
            continue
        for m in cls.members:
            if (m.is_static or m.is_const or m.is_reference or
                    m.is_bitfield or m.has_init):
                continue
            if m.is_scalar or m.is_pointer:
                what = "scalar" if m.is_scalar else "pointer"
                yield Finding(
                    path, m.line, "DET-004",
                    f"{what} member '{cls.name}::{m.name}' of an "
                    "aggregate has no initializer (indeterminate "
                    "reads are a nondeterminism hazard); add '= ...' "
                    "or '{}'")


def check_conc001(path: str, text: str):
    for cls in parse_classes(text):
        for m in cls.members:
            # References cannot be reseated; ownership is annotated
            # where the referent itself is declared.
            if (m.is_static or m.is_const or m.is_reference or
                    m.has_annotation):
                continue
            yield Finding(
                path, m.line, "CONC-001",
                f"mutable member '{cls.name}::{m.name}' lacks a "
                "capability/ownership annotation (SOE_GUARDED_BY / "
                "SOE_PT_GUARDED_BY / SOE_THREAD_OWNED); this file is "
                "conc-optin")


# --- libclang backend (optional cross-check) ------------------------


def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def check_file_libclang(root, relpath, compile_db, directives):
    """AST-based member checks (DET-004 / CONC-001 / DET-003
    range-for precision). Best-effort: any libclang failure returns
    None so the caller falls back to the token backend."""
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        args = ["-std=c++20", f"-I{os.path.join(root, 'src')}"]
        if compile_db:
            try:
                db = ci.CompilationDatabase.fromDirectory(compile_db)
                cmds = db.getCompileCommands(
                    os.path.join(root, relpath))
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:-1]
                            if a != "-c" and not a.endswith(".cc")]
            except Exception:
                pass
        tu = index.parse(os.path.join(root, relpath), args=args)
        findings = []
        raw_lines = None

        def field_has_annotation(cursor):
            nonlocal raw_lines
            if raw_lines is None:
                with open(os.path.join(root, relpath),
                          encoding="utf-8",
                          errors="replace") as f:
                    raw_lines = f.read().splitlines()
            ln = cursor.location.line
            seg = " ".join(raw_lines[max(0, ln - 1):ln + 1])
            return any(m in seg for m in ANNOTATION_MACROS)

        def record_is_aggregate(cursor):
            import clang.cindex as cci
            for ch in cursor.get_children():
                if ch.kind in (cci.CursorKind.CONSTRUCTOR,
                               cci.CursorKind.DESTRUCTOR):
                    return False
            return True

        def walk(cursor):
            import clang.cindex as cci
            for ch in cursor.get_children():
                loc = ch.location
                if (loc.file and
                        os.path.abspath(str(loc.file)) ==
                        os.path.abspath(
                            os.path.join(root, relpath))):
                    if ch.kind in (cci.CursorKind.STRUCT_DECL,
                                   cci.CursorKind.CLASS_DECL) and \
                            ch.is_definition():
                        aggregate = record_is_aggregate(ch)
                        for f_ in ch.get_children():
                            if f_.kind != cci.CursorKind.FIELD_DECL:
                                continue
                            t = f_.type
                            scalarish = t.kind in (
                                cci.TypeKind.BOOL, cci.TypeKind.INT,
                                cci.TypeKind.UINT, cci.TypeKind.LONG,
                                cci.TypeKind.ULONG,
                                cci.TypeKind.LONGLONG,
                                cci.TypeKind.ULONGLONG,
                                cci.TypeKind.SHORT,
                                cci.TypeKind.USHORT,
                                cci.TypeKind.CHAR_S,
                                cci.TypeKind.UCHAR,
                                cci.TypeKind.FLOAT,
                                cci.TypeKind.DOUBLE,
                                cci.TypeKind.POINTER,
                                cci.TypeKind.ENUM,
                                cci.TypeKind.TYPEDEF,
                            )
                            has_init = any(
                                True for _ in f_.get_children())
                            if (aggregate and scalarish and
                                    not has_init and
                                    rule_applies("DET-004",
                                                 relpath,
                                                 directives)):
                                findings.append(Finding(
                                    relpath, f_.location.line,
                                    "DET-004",
                                    f"scalar member "
                                    f"'{ch.spelling}::{f_.spelling}'"
                                    " of an aggregate has no "
                                    "initializer (libclang)"))
                            if (directives.conc_optin and
                                    not field_has_annotation(f_)):
                                findings.append(Finding(
                                    relpath, f_.location.line,
                                    "CONC-001",
                                    f"mutable member "
                                    f"'{ch.spelling}::{f_.spelling}'"
                                    " lacks a capability/ownership "
                                    "annotation (libclang)"))
                walk(ch)

        walk(tu.cursor)
        return findings
    except Exception:
        return None


# --- scoping --------------------------------------------------------


def rule_applies(rule: str, relpath: str,
                 directives: FileDirectives | None = None) -> bool:
    p = relpath.replace(os.sep, "/")
    if rule == "DET-001":
        return p.startswith(DET001_DIRS)
    if rule == "DET-002":
        return p not in DET002_WHITELIST
    if rule == "DET-003":
        return p.startswith(DET003_PREFIXES)
    if rule == "DET-004":
        return p.startswith(DET004_PREFIXES) and p.endswith(
            (".hh", ".h", ".hpp"))
    if rule == "CONC-001":
        return directives is not None and directives.conc_optin
    return False


def check_file(root: str, relpath: str, backend: str,
               compile_db: str | None):
    full = os.path.join(root, relpath)
    try:
        with open(full, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"detlint: cannot read {relpath}: {e}",
              file=sys.stderr)
        return []
    directives = scan_directives(raw)
    if directives.skip_file:
        return []
    stripped = strip_preprocessor(strip_comments_and_strings(raw))
    masked = _mask_annotations(stripped)

    findings = []
    if rule_applies("DET-001", relpath):
        findings.extend(check_det001(relpath, stripped))
    if rule_applies("DET-002", relpath):
        findings.extend(check_det002(relpath, stripped))
    if rule_applies("DET-003", relpath):
        findings.extend(check_det003(relpath, stripped))

    member_findings = None
    if backend == "libclang":
        member_findings = check_file_libclang(
            root, relpath, compile_db, directives)
        if member_findings is None:
            print(f"detlint: libclang failed on {relpath}; "
                  "falling back to the token backend",
                  file=sys.stderr)
    if member_findings is None:
        member_findings = []
        if rule_applies("DET-004", relpath):
            member_findings.extend(check_det004(relpath, masked))
        if rule_applies("CONC-001", relpath, directives):
            member_findings.extend(check_conc001(relpath, masked))
    findings.extend(member_findings)

    return [f for f in findings
            if not directives.is_allowed(f.rule, f.line)]


def discover_files(root: str):
    out = []
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            # Never descend into build or fixture trees.
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", "fixtures",
                                        "__pycache__")]
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, fn), root))
    return out


# --- baseline -------------------------------------------------------


def load_baseline(path: str):
    entries = set()
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="detlint",
        description="determinism & concurrency lint for soefair")
    ap.add_argument("files", nargs="*",
                    help="files to check (default: the whole tree)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels up "
                         "from this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file of grandfathered findings")
    ap.add_argument("--backend",
                    choices=("auto", "text", "libclang"),
                    default="auto",
                    help="analysis backend (auto prefers libclang "
                         "when importable)")
    ap.add_argument("--compile-db", default=None,
                    help="directory holding compile_commands.json "
                         "(libclang backend)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with current findings")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in RULES.items():
            print(f"{rid}  {desc}")
        return 0

    root = args.root or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print(f"detlint: root '{root}' is not a directory",
              file=sys.stderr)
        return 2

    backend = args.backend
    if backend == "auto":
        backend = "libclang" if libclang_available() else "text"
    if backend == "libclang" and not libclang_available():
        print("detlint: libclang backend requested but the 'clang' "
              "python package is not importable", file=sys.stderr)
        return 2

    if args.files:
        relpaths = [os.path.relpath(os.path.abspath(f), root)
                    for f in args.files]
    else:
        relpaths = discover_files(root)

    findings = []
    for rp in relpaths:
        findings.extend(check_file(root, rp, backend,
                                   args.compile_db))
    findings.sort(key=Finding.sort_key)
    formatted = [f.format() for f in findings]

    if args.update_baseline:
        if not args.baseline:
            print("detlint: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write("# detlint baseline: grandfathered findings, one "
                    "per line.\n# Fix findings rather than adding "
                    "here; remove lines as they are fixed.\n")
            for line in formatted:
                f.write(line + "\n")
        print(f"detlint: baseline rewritten with {len(formatted)} "
              f"finding(s)")
        return 0

    baseline = load_baseline(args.baseline)
    new = [line for line in formatted if line not in baseline]
    fixed = sorted(baseline - set(formatted))

    if fixed:
        print("detlint: baseline entries no longer reported "
              "(consider removing):")
        for line in fixed:
            print(f"  {line}")
    if new:
        print("detlint: NEW findings not in the baseline:",
              file=sys.stderr)
        for line in new:
            print(line, file=sys.stderr)
        print("detlint: fix them or (sparingly) baseline them",
              file=sys.stderr)
        return 1
    print(f"detlint[{backend}]: clean ({len(formatted)} finding(s), "
          f"all baselined; {len(relpaths)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
