// detlint fixture: clean twin of det002_bad.cc — environment access
// goes through the single accessor (harness/env.hh), so there is no
// getenv call to flag. Mentions of getenv in comments or strings
// ("getenv(") must not fire either.

#include <string>

namespace soefair::harness::env
{
std::string getOr(const char *name, const std::string &fallback);
}

namespace soefair
{

std::string
readKnob()
{
    const char *msg = "never call getenv( directly";
    (void)msg;
    return harness::env::getOr("SOEFAIR_KNOB", "");
}

} // namespace soefair
