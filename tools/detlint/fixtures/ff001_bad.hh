// FF-001 fixture: a ticking component without a wake horizon. The
// fast-forward engine asks every component when it next needs to
// run; a tick() without nextWakeTick() would be silently skipped
// over during quiescent-run jumps.
#ifndef DETLINT_FIXTURE_FF001_BAD_HH
#define DETLINT_FIXTURE_FF001_BAD_HH

#include "sim/annotations.hh"
#include "sim/types.hh"

namespace soefair
{

class SOE_THREAD_OWNED(core_lp) DripCounter // BAD: no nextWakeTick()
{
  public:
    void tick(Tick now);

  private:
    Tick drips = 0;
};

struct SOE_THREAD_OWNED(value) DripSnapshot
{
    // No tick(): passive value type, FF-001 does not apply.
    Tick total = 0;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_FF001_BAD_HH
