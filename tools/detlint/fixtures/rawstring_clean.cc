// Clean twin of rawstring_bad.cc: only the raw strings, no real
// violation — the stripper must produce zero findings.
#include <string>

namespace soefair
{

const char *kHelpText = R"(Usage hints that merely *mention* calls:
    exit(1); abort(); throw std::runtime_error("boom");
    setlocale(LC_ALL, ""); getenv("HOME"); srand(42);
unterminated " quote and a )-paren do not end the literal)";

const char *kDelimited = R"dl(a raw string with )" inside)dl";

std::size_t
helpLength()
{
    return std::string(kHelpText).size();
}

} // namespace soefair
