// ERR-002 tree fixture (bad): errors_clean.hh plus two classes the
// taxonomy never wired up — one that errors_clean.cc does not map,
// and one that declares no exit code at all.
#ifndef DETLINT_FIXTURE_TREE_ERRORS_HH
#define DETLINT_FIXTURE_TREE_ERRORS_HH

namespace soefair
{

class SimError
{
  public:
    virtual ~SimError() = default;
    int exitCode() const;
};

class InputError : public SimError
{
  public:
    static constexpr int code = 10;
};

class QuotaError : public SimError
{
  public:
    static constexpr int code = 15;
};

class OrphanError : public SimError // BAD: unmapped in errors.cc
{
  public:
    static constexpr int code = 19;
};

class CodelessError : public SimError // BAD: no exit code declared
{
  public:
    int payload = 0;
};

template <typename E, typename... Args>
[[noreturn]] void raiseError(Args &&...args);

} // namespace soefair

#endif // DETLINT_FIXTURE_TREE_ERRORS_HH
