// ERR-002 tree fixture: raiseError<E> naming a class that
// src/sim/errors.hh never declared — the failure would carry no
// exit code the supervisor can classify.
#include "sim/errors.hh"

namespace soefair
{

void
checkQuota(int used, int limit)
{
    if (used > limit)
        raiseError<MythicalError>("no such class"); // BAD
    if (used < 0)
        raiseError<InputError>("negative usage");
}

} // namespace soefair
