// ERR-003 tree fixture (bad): cli_main_clean.cc plus a verb that is
// dispatched but never registered in the verb registry — its exit
// codes are invisible to `soefair help`.
#include "harness/cli_verbs.hh"
#include "sim/errors.hh"

namespace soefair
{

namespace
{

constexpr int exitQueueSaturated = 22;

struct Options
{
    bool bad = false;
    bool full = false;
};

int
usage()
{
    return 2;
}

int
cmdRun(const Options &opts)
{
    if (opts.bad)
        raiseError<InputError>("bad input");
    return 0;
}

int
cmdProbe(const Options &opts)
{
    return opts.bad ? usage() : 0;
}

int
cmdDrain(const Options &opts)
{
    if (opts.full)
        return exitQueueSaturated;
    return 0;
}

int
cmdOrphan(const Options &opts)
{
    return opts.full ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argv[1] ? argv[1] : "";
    Options opts;
    if (cmd == "run") return cmdRun(opts);
    if (cmd == "probe") return cmdProbe(opts);
    if (cmd == "drain") return cmdDrain(opts);
    if (cmd == "orphan") return cmdOrphan(opts); // BAD: unregistered
    return usage();
}

} // namespace soefair
