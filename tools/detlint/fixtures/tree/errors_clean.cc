// ERR-002 tree fixture: the errors.cc side of the taxonomy. Maps
// InputError and QuotaError (complete for errors_clean.hh; leaves
// errors_bad.hh's OrphanError unmapped).
#include "sim/errors.hh"

namespace soefair
{

int
SimError::exitCode() const
{
    if (isInput())
        return InputError::code;
    return QuotaError::code;
}

const char *
simErrorKindNameForExit(int code)
{
    switch (code) {
      case InputError::code:
        return "input";
      case QuotaError::code:
        return "quota";
    }
    return "unknown";
}

} // namespace soefair
