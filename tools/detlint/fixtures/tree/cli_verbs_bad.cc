// ERR-003 tree fixture (bad): cli_verbs_clean.cc after two doc rots
// — 'drain' lost its "22 admission control rejected" entry (the
// deleted-doc-entry demo) and 'ghost' documents an exit code that
// maps to nothing in the taxonomy.
#include "harness/cli_verbs.hh"

namespace soefair
{
namespace harness
{

namespace
{
const char *exitBasic = "0 ok; 2 usage; 1 fatal; 3 internal panic";
}

std::vector<Verb>
buildVerbs()
{
    std::vector<Verb> verbs;
    verbs.push_back({"run", "run <n>", "Run the model.", "",
                     "0 ok; 2 usage; 10 bad input"});
    verbs.push_back({"probe", "probe", "Probe the queue.", "",
                     exitBasic});
    verbs.push_back({"drain", "drain <dir>", "Drain the queue.", "",
                     "0 ok; 2 usage"}); // BAD: omits reachable 22
    verbs.push_back({"ghost", "ghost", "Vestigial verb.", "",
                     "0 ok; 42 from nowhere"}); // BAD: 42 unknown
    return verbs;
}

} // namespace harness
} // namespace soefair
