// ERR-003 tree fixture (clean): a miniature cli_verbs.cc registry
// whose documented exit codes exactly cover what each verb's
// implementation (cli_main_clean.cc) can statically produce.
#include "harness/cli_verbs.hh"

namespace soefair
{
namespace harness
{

namespace
{
const char *exitBasic = "0 ok; 2 usage; 1 fatal; 3 internal panic";
}

std::vector<Verb>
buildVerbs()
{
    std::vector<Verb> verbs;
    verbs.push_back({"run", "run <n>", "Run the model.", "",
                     "0 ok; 2 usage; 10 bad input"});
    verbs.push_back({"probe", "probe", "Probe the queue.", "",
                     exitBasic});
    verbs.push_back({"drain", "drain <dir>", "Drain the queue.", "",
                     "0 ok; 2 usage; 22 admission control rejected"});
    return verbs;
}

} // namespace harness
} // namespace soefair
