// ERR-002 tree fixture (clean): a miniature src/sim/errors.hh whose
// every SimError class carries a code and is fully mapped by
// errors_clean.cc.
#ifndef DETLINT_FIXTURE_TREE_ERRORS_HH
#define DETLINT_FIXTURE_TREE_ERRORS_HH

namespace soefair
{

class SimError
{
  public:
    virtual ~SimError() = default;
    int exitCode() const;
};

class InputError : public SimError
{
  public:
    static constexpr int code = 10;
};

class QuotaError : public SimError
{
  public:
    static constexpr int code = 15;
};

template <typename E, typename... Args>
[[noreturn]] void raiseError(Args &&...args);

} // namespace soefair

#endif // DETLINT_FIXTURE_TREE_ERRORS_HH
