// ERR-003 tree fixture (clean): the CLI entry point whose verb
// implementations the rule statically walks — literals, ternaries,
// named exit constants, one-level helper expansion and raiseError
// all resolve; everything dispatched is registered.
#include "harness/cli_verbs.hh"
#include "sim/errors.hh"

namespace soefair
{

namespace
{

constexpr int exitQueueSaturated = 22;

struct Options
{
    bool bad = false;
    bool full = false;
};

int
usage()
{
    return 2;
}

int
cmdRun(const Options &opts)
{
    if (opts.bad)
        raiseError<InputError>("bad input");
    return 0;
}

int
cmdProbe(const Options &opts)
{
    return opts.bad ? usage() : 0;
}

int
cmdDrain(const Options &opts)
{
    if (opts.full)
        return exitQueueSaturated;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argv[1] ? argv[1] : "";
    Options opts;
    if (cmd == "run") return cmdRun(opts);
    if (cmd == "probe") return cmdProbe(opts);
    if (cmd == "drain") return cmdDrain(opts);
    return usage();
}

} // namespace soefair
