// Clean twin of stat002_bad.cc: every counter registered exactly
// once; reusing a name under a *different* parent group is fine.
#include "stats/stats.hh"

namespace soefair
{

CacheStats::CacheStats(Group &parent, Group &other)
    : hits(&parent, "hits", "demand hits"),
      misses(&parent, "misses", "demand misses"),
      fills(&parent, "fills", "linefill count"),
      otherHits(&other, "hits", "same name, different group")
{
}

} // namespace soefair
