// Clean twin of ff002_bad.cc: every per-cycle stall counter that is
// incremented on the tick path also appears in the
// creditSkippedCycles() bulk-credit path, so fast-forwarded stats
// stay byte-identical to the ticked run.
#include "cpu/ff002_widget.hh"

namespace soefair
{
namespace cpu
{

void
Widget::tick(Tick now)
{
    if (portBusy)
        ++portStallCycles;
    if (bufferFull)
        fullStallCycles += 1;
    lastTick = now;
}

void
Widget::creditSkippedCycles(Tick now, Tick skipped)
{
    if (portBusy)
        portStallCycles += skipped;
    if (bufferFull)
        fullStallCycles += skipped;
    lastTick = now;
}

} // namespace cpu
} // namespace soefair
