// OWN-001 fixture: mutable classes the PDES ownership manifest
// cannot place — one with no SOE_THREAD_OWNED tag at all, one with
// a domain outside the sharding vocabulary.
#ifndef DETLINT_FIXTURE_OWN001_BAD_HH
#define DETLINT_FIXTURE_OWN001_BAD_HH

#include "sim/annotations.hh"

namespace soefair
{

struct MshrLedger // BAD: mutable class without a sharding domain
{
    int inflight = 0;
};

class SOE_THREAD_OWNED(banana) LedgerIndex // BAD: unknown domain
{
  public:
    int slot() const { return idx; }

  private:
    int idx = 0;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_OWN001_BAD_HH
