// detlint fixture: direct getenv outside the whitelisted accessor.
// One DET-002 finding per BAD line, anywhere except
// src/harness/env.cc.

#include <cstdlib>
#include <string>

namespace soefair
{

std::string
readKnob()
{
    const char *v = std::getenv("SOEFAIR_KNOB");   // BAD: getenv
    if (!v)
        v = getenv("SOEFAIR_FALLBACK");            // BAD: getenv
    return v ? v : "";
}

} // namespace soefair
