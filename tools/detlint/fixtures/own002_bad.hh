// OWN-002 fixture: the `todo` placeholder that `--fix` writes. It
// keeps OWN-001 quiet so the autofix is mechanical, but the
// manifest gate stays red until a human assigns a real domain.
#ifndef DETLINT_FIXTURE_OWN002_BAD_HH
#define DETLINT_FIXTURE_OWN002_BAD_HH

#include "sim/annotations.hh"

namespace soefair
{

struct SOE_THREAD_OWNED(todo) EvictionScratch // BAD: placeholder
{
    int victimWay = -1;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_OWN002_BAD_HH
