// detlint fixture: clean twin of det004_bad.hh — every way a member
// may legitimately lack an inline '= ...' without tripping DET-004.

#pragma once

#include <cstdint>

namespace soefair
{

using Tick = std::uint64_t;

/** All scalars initialized in-class. */
struct CleanAggregate
{
    Tick when = 0;
    unsigned count{0};
    double *samples = nullptr;
    bool armed = false;
};

/** A user-declared constructor takes over initialization, so bare
 *  members are not flagged. */
class HasCtor
{
  public:
    HasCtor(Tick when, unsigned count);

  private:
    Tick when;
    unsigned count;
    double scale;
};

/** static / const / reference / bitfield members are exempt. */
struct ExemptMembers
{
    static int shared;
    static constexpr unsigned kLimit = 8;
    const int &bound;
    unsigned flagA : 1;
    unsigned flagB : 3;
};

/** Unions are storage overlays; DET-004 does not apply. */
union RawBits
{
    std::uint64_t u;
    double d;
};

} // namespace soefair
