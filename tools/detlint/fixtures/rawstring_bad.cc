// Raw-string-literal regression fixture: everything inside the
// R"(...)" literals must be ignored by every text rule, while the
// real violation after them is still found at the correct line.
#include <cstdlib>
#include <string>

namespace soefair
{

const char *kHelpText = R"(Usage hints that merely *mention* calls:
    exit(1); abort(); throw std::runtime_error("boom");
    setlocale(LC_ALL, ""); getenv("HOME"); srand(42);
unterminated " quote and a )-paren do not end the literal)";

const char *kDelimited = R"dl(a raw string with )" inside)dl";

int
helpAndFail(bool show)
{
    std::string s = kHelpText;
    if (show)
        exit(3); // BAD: real naked exit after the raw strings
    return int(s.size());
}

} // namespace soefair
