// Clean twin of err001_bad.cc: failures land in the SimError
// taxonomy, rethrows stay bare, member functions may be named
// terminate(), and the one sanctioned hard exit carries a
// justified allow-directive.
#include <unistd.h>

#include "sim/errors.hh"

namespace soefair
{

int
checkedDivide(int num, int den)
{
    if (den == 0)
        raiseError<InputError>("division by zero");
    try {
        return num / den;
    } catch (...) {
        throw; // bare rethrow keeps the original taxonomy entry
    }
}

void
stopWorker(Worker &w)
{
    w.terminate(); // member call, not std::terminate
}

void
forkChildEpilogue(int code)
{
    // Fork-child hard exit: must not unwind parent state.
    // detlint: allow(ERR-001)
    _exit(code);
}

} // namespace soefair
