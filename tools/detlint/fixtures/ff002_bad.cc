// FF-002 fixture: ff002_clean.cc with fullStallCycles's bulk-credit
// line deleted — exactly the edit the rule exists to catch. A
// per-cycle stall counter that the creditSkippedCycles() path does
// not replay diverges the moment fast-forward jumps a quiescent
// span, breaking stats byte-identity.
#include "cpu/ff002_widget.hh"

namespace soefair
{
namespace cpu
{

void
Widget::tick(Tick now)
{
    if (portBusy)
        ++portStallCycles;
    if (bufferFull)
        fullStallCycles += 1; // BAD: never bulk-credited
    lastTick = now;
}

void
Widget::creditSkippedCycles(Tick now, Tick skipped)
{
    if (portBusy)
        portStallCycles += skipped;
    lastTick = now;
}

} // namespace cpu
} // namespace soefair
