// STAT-002 fixture: the same (parent, name) pair registered twice.
// The stats tree would either reject the duplicate at runtime or
// dump two rows under one ambiguous name.
#include "stats/stats.hh"

namespace soefair
{

CacheStats::CacheStats(Group &parent)
    : hits(&parent, "hits", "demand hits"),
      misses(&parent, "misses", "demand misses"),
      fills(&parent, "hits", "aliases an existing name") // BAD
{
}

} // namespace soefair
