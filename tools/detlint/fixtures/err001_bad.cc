// ERR-001 fixture: process exits and throws that bypass the
// SimError exit-code taxonomy. Each one would produce an exit code
// the supervisor cannot classify.
#include <cstdlib>
#include <exception>

namespace soefair
{

int
checkedDivide(int num, int den)
{
    if (den == 0)
        exit(2); // BAD: naked exit
    if (num < 0)
        abort(); // BAD: naked abort
    if (num == 1)
        throw "positive"; // BAD: raw throw outside the taxonomy
    if (num == 2)
        std::terminate(); // BAD: std::terminate
    return num / den;
}

} // namespace soefair
