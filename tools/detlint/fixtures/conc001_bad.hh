// detlint fixture: a file that opted into the concurrency
// annotation contract but left members untagged. One CONC-001
// finding per BAD line.
// detlint: conc-optin

#pragma once

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"

namespace soefair
{

using Tick = std::uint64_t;

class PartiallyAnnotated
{
  public:
    void step();

  private:
    Tick now SOE_THREAD_OWNED(sim) = 0;        // ok: ownership tag
    Tick deadline = 0;                         // BAD: untagged
    std::vector<Tick> pending;                 // BAD: untagged
    static constexpr unsigned kDepth = 4;      // ok: constexpr
};

} // namespace soefair
