// Clean twin of own001_bad.hh: tagged classes, a nested class that
// inherits its enclosing domain, and an immutable class that needs
// no tag.
#ifndef DETLINT_FIXTURE_OWN001_CLEAN_HH
#define DETLINT_FIXTURE_OWN001_CLEAN_HH

#include "sim/annotations.hh"

namespace soefair
{

struct SOE_THREAD_OWNED(shared) MshrLedger
{
    int inflight = 0;

    struct Waiter // nested: inherits 'shared' from MshrLedger
    {
        int slot = 0;
    };
};

class SOE_THREAD_OWNED(core_lp) LedgerIndex
{
  public:
    int slot() const { return idx; }

  private:
    int idx = 0;
};

struct LedgerLimits
{
    // const-only members: not a mutable class, no tag required
    const int capacity = 8;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_OWN001_CLEAN_HH
