// detlint fixture: clean twin of conc001_bad.hh — opted in, and
// every mutable member carries an ownership tag or capability
// annotation. No findings.
// detlint: conc-optin

#pragma once

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"

namespace soefair
{

using Tick = std::uint64_t;

class FullyAnnotated
{
  public:
    void step();

  private:
    Tick now SOE_THREAD_OWNED(sim) = 0;
    Tick deadline SOE_THREAD_OWNED(sim) = 0;
    std::vector<Tick> pending SOE_THREAD_OWNED(sim);
    int *scratch SOE_PT_GUARDED_BY(mtx) = nullptr;
    AnnotatedMutex mtx;  // detlint: allow(CONC-001) — is the capability
    static constexpr unsigned kDepth = 4;
    const unsigned fixed = 2;
};

} // namespace soefair
