// detlint fixture: unordered / pointer-keyed containers in
// stats-feeding code. One DET-003 finding per BAD line when placed
// under src/stats/ (or any other DET-003 scope).

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace soefair
{

struct Group;

struct BadAccumulator
{
    std::unordered_map<std::string, double> byName;   // BAD: unordered
    std::unordered_set<int> seen;                     // BAD: unordered
    std::map<Group *, double> byGroup;                // BAD: ptr-keyed
};

} // namespace soefair
