// detlint fixture: aggregate structs (no user-declared constructor)
// with uninitialized scalar/pointer members: one DET-004 finding
// per marked line when placed anywhere under src/ as a header.

#pragma once

#include <cstdint>
#include <string>

namespace soefair
{

using Tick = std::uint64_t;

struct BadAggregate
{
    Tick when;              // BAD: uninitialized scalar
    unsigned count;         // BAD: uninitialized scalar
    double *samples;        // BAD: uninitialized pointer
    bool armed = false;     // ok: initialized
    std::string name;       // ok: class type, default-constructs
};

struct BadNested
{
    struct Inner
    {
        int payload;        // BAD: uninitialized scalar
    };
    Inner inner;            // ok: class type
    std::uint32_t crc;      // BAD: uninitialized scalar
};

} // namespace soefair
