// detlint fixture: every line marked BAD below must produce exactly
// one DET-001 finding when this file is placed under src/sim/.
// Never compiled; consumed by tools/detlint/selftest.py.

#include <chrono>
#include <clocale>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unistd.h>

namespace soefair
{

unsigned long
badSeed()
{
    unsigned long s = time(nullptr);            // BAD: wall clock
    s ^= static_cast<unsigned long>(rand());    // BAD: libc PRNG
    s ^= static_cast<unsigned long>(getpid());  // BAD: process id
    return s;
}

double
badNow()
{
    auto t = std::chrono::steady_clock::now();  // BAD: chrono clock
    return t.time_since_epoch().count();
}

unsigned
badEntropy()
{
    std::random_device rd;                      // BAD: random_device
    return rd();
}

void
badLocale()
{
    setlocale(LC_ALL, "");                      // BAD: locale call
}

} // namespace soefair
