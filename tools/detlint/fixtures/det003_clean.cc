// detlint fixture: clean twin of det003_bad.cc — ordered containers
// keyed by values, so iteration order is deterministic.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace soefair
{

struct CleanAccumulator
{
    std::map<std::string, double> byName;
    std::set<int> seen;
    // Keyed by a stable id, not an allocation address.
    std::map<std::uint64_t, double> byGroupId;
    std::vector<double> samples;
};

} // namespace soefair
