// STAT-001 fixture: floating point fed to payload/CSV output
// without the statfmt codec. Each site's byte format silently
// depends on ambient stream state.
#include <iomanip>
#include <ostream>

namespace soefair
{

void
writeRow(std::ostream &os, double ipc, long cycles)
{
    os << std::setprecision(9); // BAD: ad-hoc precision
    os << "ipc=" << ipc << "\n"; // BAD: raw double streamed
    os << "share=" << 0.5 << "\n"; // BAD: float literal streamed
    os << "cycles=" << cycles << "\n";
}

} // namespace soefair
