// Clean twin of stat001_bad.cc: every double goes through the
// statfmt codec, so the emitted bytes are pinned at the call site
// regardless of stream state.
#include <ostream>

#include "stats/statfmt.hh"

namespace soefair
{

void
writeRow(std::ostream &os, double ipc, long cycles)
{
    os << "ipc=" << statistics::statfmt::csv(ipc) << "\n";
    os << "share=" << statistics::statfmt::csv(0.5) << "\n";
    os << "cycles=" << cycles << "\n";
}

} // namespace soefair
