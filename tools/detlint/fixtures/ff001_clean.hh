// Clean twin of ff001_bad.hh: the ticking component publishes its
// wake horizon, so fast-forward can jump quiescent spans safely.
#ifndef DETLINT_FIXTURE_FF001_CLEAN_HH
#define DETLINT_FIXTURE_FF001_CLEAN_HH

#include "sim/annotations.hh"
#include "sim/types.hh"

namespace soefair
{

class SOE_THREAD_OWNED(core_lp) DripCounter
{
  public:
    void tick(Tick now);

    /** Earliest tick at which tick() must run again. */
    Tick nextWakeTick() const;

  private:
    Tick drips = 0;
};

struct SOE_THREAD_OWNED(value) DripSnapshot
{
    Tick total = 0;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_FF001_CLEAN_HH
