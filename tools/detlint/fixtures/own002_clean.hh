// Clean twin of own002_bad.hh: the placeholder replaced by a real
// sharding domain.
#ifndef DETLINT_FIXTURE_OWN002_CLEAN_HH
#define DETLINT_FIXTURE_OWN002_CLEAN_HH

#include "sim/annotations.hh"

namespace soefair
{

struct SOE_THREAD_OWNED(shared) EvictionScratch
{
    int victimWay = -1;
};

} // namespace soefair

#endif // DETLINT_FIXTURE_OWN002_CLEAN_HH
