// detlint fixture: clean twin of det001_bad.cc. No findings when
// placed under src/sim/: seeded PRNG, tick arithmetic, and one
// explicitly suppressed wall-clock read.

#include <cstdint>

namespace soefair
{

using Tick = std::uint64_t;

/** Seeded, deterministic: identifiers like 'randomValue' or a member
 *  named 'clock' must not trip the call-site patterns. */
struct SeededRng
{
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    std::uint64_t clockTicks = 0;

    std::uint64_t
    randomValue()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

Tick
advance(Tick now, Tick delta)
{
    // The word steady_clock inside this comment must not fire.
    const char *label = "std::chrono::steady_clock";  // nor a string
    (void)label;
    return now + delta;
}

std::uint64_t
suppressedWallClock()
{
    return time(nullptr); // detlint: allow(DET-001) — logged only
}

} // namespace soefair
