#!/usr/bin/env bash
# Fault-injection matrix driver (see docs/robustness.md).
#
# Runs every fault scenario against the soefair CLI and asserts the
# hardened-runtime contract:
#
#   1. every scenario's bare run (--raw) exits with exactly the exit
#      code of its SimError class (10..13) -- never a crash (>= 128),
#      never a hang (timeout), never success;
#   2. the checked sweep (`faults all`) reports every scenario as
#      passing, across several seeds;
#   3. same-seed runs are bit-identical (determinism: no wall clock
#      or unseeded randomness anywhere in the harness);
#   4. a smoke SOE run on the same binary emits no NaN.
#
# Usage: tools/run_faults.sh [build-dir]   (default: build)
# The binary is <build-dir>/tools/soefair_cli; pass the directory of
# a sanitized build to compose the fault paths with ASan/UBSan and
# the SOE_AUDIT invariant sweeps (the ci-asan preset turns both on).

set -u

BUILD_DIR=${1:-build}
CLI="$BUILD_DIR/tools/soefair_cli"
TIMEOUT_S=${SOEFAIR_FAULT_TIMEOUT:-180}
SEEDS=${SOEFAIR_FAULT_SEEDS:-"1 2 3 4 5"}

# Robustness coverage runs with the stall fast-forward engine on
# (the production default) so fault paths compose with cycle
# skipping; set SOEFAIR_FASTFORWARD=0 to cross-check the
# cycle-stepped baseline.
export SOEFAIR_FASTFORWARD=${SOEFAIR_FASTFORWARD:-1}

if [ ! -x "$CLI" ]; then
    echo "error: $CLI not found or not executable" >&2
    echo "build first: cmake --preset release && cmake --build ..." >&2
    exit 2
fi

SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

failures=0
fail() {
    echo "FAIL: $*" >&2
    failures=$((failures + 1))
}

# --- 1. raw exit-code matrix ----------------------------------------

declare -A EXPECT=(
    [truncated-trace]=10
    [corrupt-trace-header]=10
    [corrupt-trace-record]=10
    [garbage-config]=10
    [counter-corruption]=11
    [stuck-miss]=12
    [corrupt-checkpoint]=13
)

for scenario in truncated-trace corrupt-trace-header \
                corrupt-trace-record garbage-config \
                counter-corruption stuck-miss corrupt-checkpoint; do
    want=${EXPECT[$scenario]}
    timeout "$TIMEOUT_S" "$CLI" faults "$scenario" --raw \
        --seed 1 --dir "$SCRATCH" >/dev/null 2>&1
    got=$?
    if [ "$got" -eq 124 ]; then
        fail "$scenario: hung (killed after ${TIMEOUT_S}s)"
    elif [ "$got" -ge 128 ]; then
        fail "$scenario: crashed (exit $got)"
    elif [ "$got" -ne "$want" ]; then
        fail "$scenario: exit $got, expected $want"
    else
        echo "ok: $scenario exits $got (raw)"
    fi
done

# --- 2. checked sweep across seeds ----------------------------------

for seed in $SEEDS; do
    out="$SCRATCH/sweep.$seed.out"
    if ! timeout "$TIMEOUT_S" "$CLI" faults all --seed "$seed" \
            --dir "$SCRATCH" >"$out" 2>"$out.err"; then
        fail "faults all --seed $seed exited nonzero"
        sed 's/^/    /' "$out" "$out.err" >&2
    elif grep -q "FAIL" "$out"; then
        fail "faults all --seed $seed reported scenario failures"
        sed 's/^/    /' "$out" >&2
    else
        echo "ok: faults all --seed $seed"
    fi
done

# --- 3. same-seed determinism ---------------------------------------

a="$SCRATCH/det.a"
b="$SCRATCH/det.b"
timeout "$TIMEOUT_S" "$CLI" faults all --seed 7 --dir "$SCRATCH" \
    >"$a" 2>/dev/null
timeout "$TIMEOUT_S" "$CLI" faults all --seed 7 --dir "$SCRATCH" \
    >"$b" 2>/dev/null
if cmp -s "$a" "$b"; then
    echo "ok: same-seed runs are bit-identical"
else
    fail "same-seed fault sweeps differ"
    diff "$a" "$b" | sed 's/^/    /' >&2
fi

# --- 4. NaN smoke on a real run -------------------------------------

smoke="$SCRATCH/smoke.out"
if ! timeout "$TIMEOUT_S" env SOEFAIR_SCALE=0.1 \
        "$CLI" run-soe mcf mgrid --policy fairness --F 0.5 \
        >"$smoke" 2>/dev/null; then
    fail "run-soe smoke run failed"
elif grep -qi "nan" "$smoke"; then
    fail "run-soe smoke output contains NaN"
    grep -in "nan" "$smoke" | sed 's/^/    /' >&2
else
    echo "ok: smoke SOE run is NaN-free"
fi

# --- 5. sweep supervisor fault scenarios ----------------------------
#
# Both scenarios run a tiny two-cell campaign (gcc:eon at F=0,1/2 at
# SOEFAIR_SCALE=0.02) so each job takes well under a second
# unsanitized and ~5-6 s under ASan. The deadline must stay well
# above a healthy job's runtime -- a too-tight deadline kills real
# work, not just the injected hang -- so the hang scenario uses 30 s
# (4-5x a healthy ASan job) and everything else 120 s.

SWEEP_ENV="env SOEFAIR_SCALE=0.02"
SWEEP_ARGS="sweep --pairs gcc:eon --levels 0,0.5 --retries 2 --backoff 0.1"
SWEEP_DEADLINE=120

# Uninterrupted reference campaign.
ref="$SCRATCH/sweep_ref.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" $SWEEP_ARGS \
        --deadline "$SWEEP_DEADLINE" \
        --journal "$SCRATCH/ref.journal" --out "$ref" \
        >/dev/null 2>&1; then
    fail "supervisor: reference sweep failed"
else
    echo "ok: supervisor reference sweep complete"
fi

# 5a. Busy-hang past the deadline: the injected job must be killed,
# retried, then recorded as MISSING; the campaign still finishes the
# other cells and exits with the partial-results code. A --resume
# without the injection completes it, byte-identical to the reference.
hangcsv="$SCRATCH/sweep_hang.csv"
hj="$SCRATCH/hang.journal"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" $SWEEP_ARGS \
    --deadline 30 --inject 'soe:gcc:eon:F=0.5@hang@99' \
    --journal "$hj" --out "$hangcsv" >/dev/null 2>&1
got=$?
if [ "$got" -ne 20 ]; then
    fail "supervisor hang: exit $got, expected 20 (partial)"
elif ! grep -q 'MISSING(gcc:eon,F=0.5,deadline' "$hangcsv"; then
    fail "supervisor hang: no MISSING(deadline) marker in CSV"
    sed 's/^/    /' "$hangcsv" >&2
else
    echo "ok: supervisor hang scenario is partial with MISSING marker"
fi
hangres="$SCRATCH/sweep_hang_resumed.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" $SWEEP_ARGS \
        --deadline "$SWEEP_DEADLINE" \
        --resume "$hj" --out "$hangres" >/dev/null 2>&1; then
    fail "supervisor hang: --resume exited nonzero"
elif ! cmp -s "$ref" "$hangres"; then
    fail "supervisor hang: resumed CSV differs from reference"
    diff "$ref" "$hangres" | sed 's/^/    /' >&2
else
    echo "ok: supervisor hang resume matches reference byte-for-byte"
fi

# 5b. Kill mid-journal-append: truncate the finished journal so its
# last record is torn (as a SIGKILL between write() and the newline
# would leave it). --resume must drop the torn tail, re-run only that
# job, and reproduce the reference CSV exactly.
tj="$SCRATCH/torn.journal"
cp "$SCRATCH/ref.journal" "$tj"
truncate -s -9 "$tj"
tornres="$SCRATCH/sweep_torn.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" $SWEEP_ARGS \
        --deadline "$SWEEP_DEADLINE" \
        --resume "$tj" --out "$tornres" >/dev/null 2>&1; then
    fail "supervisor torn-journal: --resume exited nonzero"
elif ! cmp -s "$ref" "$tornres"; then
    fail "supervisor torn-journal: resumed CSV differs from reference"
    diff "$ref" "$tornres" | sed 's/^/    /' >&2
else
    echo "ok: supervisor torn-journal resume matches reference"
fi

# --- 6. sweep service fault scenarios -------------------------------
#
# The durable-queue service must survive torn queue segments, corrupt
# result-cache entries, a worker SIGKILLed mid-lease and a graceful
# SIGTERM drain -- and in every case the final aggregate CSV must be
# byte-identical to an uninterrupted campaign's.

SVC_ARGS="--pairs gcc:eon --levels 0,0.5 --retries 2 --backoff 0.1"
SVC_CACHE="$SCRATCH/svc_cache"

# Uninterrupted reference drain (also populates the result cache).
svcref="$SCRATCH/svc_ref.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $SVC_ARGS \
        --queue "$SCRATCH/svc_q_ref" --cache "$SVC_CACHE" \
        --deadline "$SWEEP_DEADLINE" --out "$svcref" \
        >/dev/null 2>&1; then
    fail "service: reference drain failed"
else
    echo "ok: service reference drain complete"
fi

# 6a. Queue truncation: a worker SIGKILLed mid-append leaves a torn
# final record in the last queue segment. The next drain must
# truncate it (the record never committed), finish the campaign and
# match the reference.
qt="$SCRATCH/svc_q_torn"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" enqueue $SVC_ARGS \
        --queue "$qt" >/dev/null 2>&1; then
    fail "service queue-truncation: enqueue failed"
fi
lastseg=$(ls "$qt"/queue-*.jsonl | sort | tail -1)
printf '{"op":"lease","job":"st:gcc:1","wor' >>"$lastseg"
tornout="$SCRATCH/svc_torn.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $SVC_ARGS \
        --queue "$qt" --deadline "$SWEEP_DEADLINE" \
        --out "$tornout" >/dev/null 2>"$SCRATCH/svc_torn.err"; then
    fail "service queue-truncation: drain exited nonzero"
    sed 's/^/    /' "$SCRATCH/svc_torn.err" >&2
elif ! cmp -s "$svcref" "$tornout"; then
    fail "service queue-truncation: CSV differs from reference"
    diff "$svcref" "$tornout" | sed 's/^/    /' >&2
else
    echo "ok: service survives a torn queue segment"
fi

# 6b. Cache corruption: flip bytes in a result-cache entry. The
# drain must detect the checksum mismatch, evict the entry,
# re-simulate that one job and still match the reference.
corrupt_entry=$(ls "$SVC_CACHE"/*.rc | head -1)
printf 'XX' | dd of="$corrupt_entry" bs=1 seek=40 conv=notrunc \
    >/dev/null 2>&1
ccout="$SCRATCH/svc_ccache.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $SVC_ARGS \
        --queue "$SCRATCH/svc_q_cc" --cache "$SVC_CACHE" \
        --deadline "$SWEEP_DEADLINE" --out "$ccout" \
        >/dev/null 2>"$SCRATCH/svc_cc.err"; then
    fail "service cache-corruption: drain exited nonzero"
elif ! grep -q "evicting corrupt entry" "$SCRATCH/svc_cc.err"; then
    fail "service cache-corruption: corrupt entry was not evicted"
    sed 's/^/    /' "$SCRATCH/svc_cc.err" >&2
elif ! cmp -s "$svcref" "$ccout"; then
    fail "service cache-corruption: CSV differs from reference"
    diff "$svcref" "$ccout" | sed 's/^/    /' >&2
else
    echo "ok: service evicts corrupt cache entries and re-simulates"
fi

# 6c. Worker SIGKILLed mid-lease: the lease expires, a later drain
# reclaims the jobs at the same attempt number, and the aggregate is
# byte-identical to the reference (the golden resume gate).
qk="$SCRATCH/svc_q_kill"
ck="$SCRATCH/svc_cache_kill"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" enqueue $SVC_ARGS \
    --queue "$qk" >/dev/null 2>&1
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" serve $SVC_ARGS \
    --queue "$qk" --cache "$ck" --lease 3 \
    --deadline "$SWEEP_DEADLINE" >/dev/null 2>&1 &
serve_pid=$!
sleep 1
kill -9 "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null
killout="$SCRATCH/svc_kill.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $SVC_ARGS \
        --queue "$qk" --cache "$ck" --lease 3 \
        --deadline "$SWEEP_DEADLINE" --out "$killout" \
        >/dev/null 2>&1; then
    fail "service worker-kill: drain after SIGKILL exited nonzero"
elif ! cmp -s "$svcref" "$killout"; then
    fail "service worker-kill: CSV differs from reference"
    diff "$svcref" "$killout" | sed 's/^/    /' >&2
else
    echo "ok: service drain after SIGKILLed worker matches reference"
fi

# 6d. Graceful SIGTERM drain: a worker stuck on an injected hang is
# TERMed; it must kill its child, release the lease un-consumed and
# exit 0. A follow-up drain (no injection) finishes the campaign,
# byte-identical to the reference.
qs="$SCRATCH/svc_q_term"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" enqueue $SVC_ARGS \
    --queue "$qs" >/dev/null 2>&1
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" serve $SVC_ARGS \
    --queue "$qs" --inject 'soe:gcc:eon:F=0.5@hang@99' \
    --deadline "$SWEEP_DEADLINE" >/dev/null 2>&1 &
serve_pid=$!
sleep 2
kill -TERM "$serve_pid" 2>/dev/null
wait "$serve_pid"
got=$?
if [ "$got" -ne 0 ]; then
    fail "service sigterm: serve exited $got after SIGTERM, expected 0"
fi
termout="$SCRATCH/svc_term.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $SVC_ARGS \
        --queue "$qs" --deadline "$SWEEP_DEADLINE" \
        --out "$termout" >/dev/null 2>&1; then
    fail "service sigterm: follow-up drain exited nonzero"
elif ! cmp -s "$svcref" "$termout"; then
    fail "service sigterm: CSV differs from reference"
    diff "$svcref" "$termout" | sed 's/^/    /' >&2
else
    echo "ok: service SIGTERM drain is graceful and resumable"
fi

# --- 7. gateway / wire-protocol fault scenarios ---------------------
#
# The network front-end must uphold the same golden contract as the
# layers beneath it: a campaign submitted through a chaotic link
# aggregates byte-identical to the reference drain; quota-exceeded
# submits receive RETRY_LATER and succeed once the backlog drains
# (or exit 15 when the retry budget runs out); and a mid-stream
# gateway SIGTERM + restart resumes the watch stream with no
# duplicated or missing cells.

GW_PIDS=""
stop_gateways() {
    for p in $GW_PIDS; do
        kill -TERM "$p" 2>/dev/null
        wait "$p" 2>/dev/null
    done
    GW_PIDS=""
}
wait_sock() {
    for _ in $(seq 100); do
        [ -S "$1" ] && return 0
        sleep 0.1
    done
    return 1
}

# 7a. Golden chaos gate: submit + watch through the fault-injecting
# proxy. Drops, delays, duplicates, corruptions, truncations and
# resets must all be absorbed by the retry/resume machinery — with
# the retries observable — and the CSV must match the reference.
GW_A="$SCRATCH/gwa.sock"
PX_A="$SCRATCH/pxa.sock"
$SWEEP_ENV "$CLI" gateway --listen "unix:$GW_A" \
    --root "$SCRATCH/gwa_root" --retries 2 --backoff 0.1 \
    >"$SCRATCH/gwa.log" 2>&1 &
GW_PIDS="$GW_PIDS $!"
"$CLI" chaosproxy --listen "unix:$PX_A" --upstream "unix:$GW_A" \
    --seed 7 --fault-rate 0.4 --max-faults 10 \
    >"$SCRATCH/pxa.log" 2>&1 &
GW_PIDS="$GW_PIDS $!"
if ! wait_sock "$GW_A" || ! wait_sock "$PX_A"; then
    fail "gateway chaos: servers did not come up"
fi
chaoscsv="$SCRATCH/gw_chaos.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" submit \
        --server "unix:$PX_A" --pairs gcc:eon --levels 0,0.5 \
        --timeout 3 --client-backoff 0.05 --out "$chaoscsv" \
        >/dev/null 2>"$SCRATCH/gw_chaos.err"; then
    fail "gateway chaos: submit through proxy exited nonzero"
    sed 's/^/    /' "$SCRATCH/gw_chaos.err" >&2
elif ! cmp -s "$svcref" "$chaoscsv"; then
    fail "gateway chaos: CSV differs from reference"
    diff "$svcref" "$chaoscsv" | sed 's/^/    /' >&2
elif ! grep -q '\[client\] retry' "$SCRATCH/gw_chaos.err"; then
    fail "gateway chaos: no client retries observed in the log"
else
    echo "ok: gateway chaos campaign matches reference" \
         "($(grep -c '\[client\] retry' "$SCRATCH/gw_chaos.err")" \
         "client retries)"
fi
stop_gateways

# 7b. Tenant quota backpressure. Against a no-worker gateway whose
# quota can never fit the campaign, the submit sees RETRY_LATER
# answers and exits 15 once its budget is spent. Against a working
# gateway with a one-campaign quota, a second submit defers and then
# succeeds once the first campaign drains.
GW_B="$SCRATCH/gwb.sock"
$SWEEP_ENV "$CLI" gateway --listen "unix:$GW_B" \
    --root "$SCRATCH/gwb_root" --quota 2 --no-workers \
    >"$SCRATCH/gwb.log" 2>&1 &
GW_PIDS="$GW_PIDS $!"
wait_sock "$GW_B" || fail "gateway quota: server did not come up"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" submit \
    --server "unix:$GW_B" --pairs gcc:eon --levels 0,0.5 \
    --no-watch --retry-later 2 --client-backoff 0.05 \
    >/dev/null 2>"$SCRATCH/gw_quota.err"
got=$?
if [ "$got" -ne 15 ]; then
    fail "gateway quota: exit $got, expected 15 (quota exceeded)"
    sed 's/^/    /' "$SCRATCH/gw_quota.err" >&2
elif ! grep -q 'backpressure: quota' "$SCRATCH/gw_quota.err"; then
    fail "gateway quota: no RETRY_LATER(quota) observed before exit"
    sed 's/^/    /' "$SCRATCH/gw_quota.err" >&2
else
    echo "ok: over-quota submit gets RETRY_LATER then exits 15"
fi
stop_gateways

GW_C="$SCRATCH/gwc.sock"
$SWEEP_ENV "$CLI" gateway --listen "unix:$GW_C" \
    --root "$SCRATCH/gwc_root" --quota 4 --retries 2 --backoff 0.1 \
    >"$SCRATCH/gwc.log" 2>&1 &
GW_PIDS="$GW_PIDS $!"
wait_sock "$GW_C" || fail "gateway quota-retry: server did not come up"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" submit \
    --server "unix:$GW_C" --pairs gcc:eon --levels 0,0.5 \
    --no-watch >/dev/null 2>&1
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" submit \
        --server "unix:$GW_C" --pairs gcc:eon --levels 0.25,0.75 \
        --no-watch --client-backoff 0.2 \
        >/dev/null 2>"$SCRATCH/gw_defer.err"; then
    fail "gateway quota-retry: deferred submit never succeeded"
    sed 's/^/    /' "$SCRATCH/gw_defer.err" >&2
elif ! grep -q 'backpressure: quota' "$SCRATCH/gw_defer.err"; then
    fail "gateway quota-retry: submit succeeded without any deferral"
else
    echo "ok: quota-deferred submit succeeds on backoff retry"
fi
stop_gateways

# 7c. Mid-stream gateway restart: SIGTERM the gateway after the
# first streamed cell, restart it on the same root and socket, and
# require the watch to resume — every cell exactly once, CSV
# byte-identical to the reference.
GW_D="$SCRATCH/gwd.sock"
GWD_ROOT="$SCRATCH/gwd_root"
gwd_start() {
    $SWEEP_ENV "$CLI" gateway --listen "unix:$GW_D" \
        --root "$GWD_ROOT" --retries 2 --backoff 0.1 \
        >>"$SCRATCH/gwd.log" 2>&1 &
    gwd_pid=$!
}
gwd_start
wait_sock "$GW_D" || fail "gateway restart: server did not come up"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" submit \
    --server "unix:$GW_D" --pairs gcc:eon --levels 0,0.5 \
    --no-watch >/dev/null 2>&1
watchcsv="$SCRATCH/gw_watch.csv"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" watch \
    --server "unix:$GW_D" --pairs gcc:eon --levels 0,0.5 \
    --client-backoff 0.1 --out "$watchcsv" \
    >/dev/null 2>"$SCRATCH/gw_watch.err" &
watch_pid=$!
cell1_seen=0
for _ in $(seq $((TIMEOUT_S * 5))); do
    if grep -q '\[client\] cell 1/' "$SCRATCH/gw_watch.err"; then
        cell1_seen=1
        break
    fi
    kill -0 "$watch_pid" 2>/dev/null || break
    sleep 0.2
done
if [ "$cell1_seen" -ne 1 ]; then
    fail "gateway restart: watch never streamed its first cell"
fi
kill -TERM "$gwd_pid" 2>/dev/null
wait "$gwd_pid" 2>/dev/null
gwd_start
GW_PIDS="$GW_PIDS $gwd_pid"
wait "$watch_pid"
got=$?
if [ "$got" -ne 0 ]; then
    fail "gateway restart: watch exited $got after restart"
    sed 's/^/    /' "$SCRATCH/gw_watch.err" >&2
elif ! cmp -s "$svcref" "$watchcsv"; then
    fail "gateway restart: resumed CSV differs from reference"
    diff "$svcref" "$watchcsv" | sed 's/^/    /' >&2
else
    dup=0
    for i in 1 2 3 4; do
        n=$(grep -c "\[client\] cell $i/4" "$SCRATCH/gw_watch.err")
        [ "$n" -eq 1 ] || dup=1
    done
    if [ "$dup" -ne 0 ]; then
        fail "gateway restart: cells duplicated or missing in stream"
        grep '\[client\] cell' "$SCRATCH/gw_watch.err" \
            | sed 's/^/    /' >&2
    else
        echo "ok: watch resumes across gateway restart," \
             "every cell exactly once"
    fi
fi
stop_gateways

# --- 8. in-process thread-pool executor fault scenarios -------------
#
# The threaded drain must uphold the same golden contract as fork
# mode: an in-thread SimError quarantines only its job with the
# fork-identical failure record, a SIGKILL mid-batch leaves only
# expired leases behind (reclaimed at the same attempt), and a
# graceful SIGTERM releases unstarted claims un-consumed — in every
# recoverable case the final aggregate is byte-identical to the
# reference.

THR_ARGS="--pairs gcc:eon --levels 0,0.5 --retries 2 --backoff 0.1"

# 8a. In-thread SimError quarantine: the injected InputError unwinds
# inside a worker thread, is mapped to its exit code and quarantines
# just that job; the drain finishes the other cells and reports the
# fork-identical MISSING(input) marker with the partial exit code.
q8a="$SCRATCH/thr_q_poison"
poisonout="$SCRATCH/thr_poison.csv"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $THR_ARGS \
    --queue "$q8a" --threads 2 --batch 2 \
    --inject 'soe:gcc:eon:F=0.5@input@99' \
    --deadline "$SWEEP_DEADLINE" --out "$poisonout" \
    >/dev/null 2>&1
got=$?
if [ "$got" -ne 20 ]; then
    fail "threaded poison: exit $got, expected 20 (partial)"
elif ! grep -q 'MISSING(gcc:eon,F=0.5,input' "$poisonout"; then
    fail "threaded poison: no MISSING(input) marker in CSV"
    sed 's/^/    /' "$poisonout" >&2
else
    echo "ok: threaded in-thread SimError quarantines with" \
         "fork-identical record"
fi

# 8b. SIGKILL mid-batch: the pool dies holding a batch of leases;
# they expire and a fork-mode drain reclaims them at the same
# attempt, reproducing the reference CSV exactly.
q8b="$SCRATCH/thr_q_kill"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" enqueue $THR_ARGS \
    --queue "$q8b" >/dev/null 2>&1
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" serve $THR_ARGS \
    --queue "$q8b" --threads 2 --batch 4 --lease 3 \
    --deadline "$SWEEP_DEADLINE" >/dev/null 2>&1 &
serve_pid=$!
sleep 1
kill -9 "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null
thrkill="$SCRATCH/thr_kill.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $THR_ARGS \
        --queue "$q8b" --lease 3 --deadline "$SWEEP_DEADLINE" \
        --out "$thrkill" >/dev/null 2>&1; then
    fail "threaded kill: drain after SIGKILL exited nonzero"
elif ! cmp -s "$svcref" "$thrkill"; then
    fail "threaded kill: CSV differs from reference"
    diff "$svcref" "$thrkill" | sed 's/^/    /' >&2
else
    echo "ok: fork drain after SIGKILLed thread pool matches reference"
fi

# 8c. Graceful SIGTERM: the pool finishes the jobs already running,
# releases every unstarted claim un-consumed and exits 0; a
# follow-up threaded drain reruns the released jobs at attempt 1 and
# matches the reference byte-for-byte.
q8c="$SCRATCH/thr_q_term"
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" enqueue $THR_ARGS \
    --queue "$q8c" >/dev/null 2>&1
timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" serve $THR_ARGS \
    --queue "$q8c" --threads 1 --batch 8 \
    --deadline "$SWEEP_DEADLINE" >/dev/null 2>&1 &
serve_pid=$!
sleep 1
kill -TERM "$serve_pid" 2>/dev/null
wait "$serve_pid"
got=$?
if [ "$got" -ne 0 ]; then
    fail "threaded sigterm: serve exited $got after SIGTERM, expected 0"
fi
thrterm="$SCRATCH/thr_term.csv"
if ! timeout "$TIMEOUT_S" $SWEEP_ENV "$CLI" drain $THR_ARGS \
        --queue "$q8c" --threads 2 --batch 2 \
        --deadline "$SWEEP_DEADLINE" --out "$thrterm" \
        >/dev/null 2>&1; then
    fail "threaded sigterm: follow-up drain exited nonzero"
elif ! cmp -s "$svcref" "$thrterm"; then
    fail "threaded sigterm: CSV differs from reference"
    diff "$svcref" "$thrterm" | sed 's/^/    /' >&2
else
    echo "ok: threaded SIGTERM drain is graceful and resumable"
fi

# --------------------------------------------------------------------

if [ "$failures" -ne 0 ]; then
    echo "run_faults: $failures check(s) FAILED" >&2
    exit 1
fi
echo "run_faults: all checks passed"
exit 0
