/**
 * @file
 * The soefair command-line driver.
 *
 *   soefair_cli <command> [args] [options]
 *
 * Commands:
 *   list                         list the available benchmarks
 *   machine                      print the simulated machine (Table 3)
 *   run-st <bench>               run one benchmark alone
 *   run-soe <benchA> <benchB>..  run 2+ benchmarks under SOE;
 *                                a name of the form trace:<path>
 *                                replays a recorded trace file
 *   record-trace <bench>         record a workload to a trace file
 *                                (--out file, --instrs N, --seed S)
 *   sweep                        run benchmark pairs across F levels
 *                                under the crash-isolated supervisor
 *                                and emit CSV (--pairs a:b,c:d
 *                                defaults to the paper's 16; --out
 *                                file defaults to stdout). Exits 0
 *                                when every cell completed, 20 when
 *                                results are partial (gaps appear as
 *                                MISSING(...) lines), 21 when no
 *                                cell completed.
 *   enqueue                      durably enqueue a sweep campaign
 *                                into a job queue directory
 *                                (--queue DIR; sweep's --pairs /
 *                                --levels / run options select the
 *                                campaign). Idempotent; exits 22
 *                                when admission control rejected
 *                                jobs (queue at capacity)
 *   serve                        worker loop: drain the queue under
 *                                lease-based claiming, serving jobs
 *                                from the verified result cache when
 *                                possible (--queue DIR --cache DIR).
 *                                Exits 0 on drain or graceful
 *                                SIGTERM shutdown
 *   drain                        enqueue (if needed) + serve +
 *                                aggregate: one-command service
 *                                campaign emitting the same CSV as
 *                                `sweep` (same exit codes)
 *   gateway                      network front-end of the sweep
 *                                service: framed submit/watch/status
 *                                over unix/tcp sockets with tenant
 *                                quotas and RETRY_LATER backpressure
 *                                (--listen ADDR --root DIR; see
 *                                docs/robustness.md)
 *   submit                       submit a campaign to a gateway
 *                                (idempotent, retrying) and stream
 *                                its results to CSV (--server ADDR)
 *   watch                        re-attach to a submitted campaign's
 *                                result stream (--server, --key)
 *   chaosproxy                   deterministic fault-injecting proxy
 *                                between client and gateway
 *                                (--listen, --upstream, --seed)
 *   help [verb]                  the full verb registry: options and
 *                                exit codes per verb
 *   analytic                     evaluate the analytical model
 *   faults [scenario|all]        fault-injection harness: run one
 *                                scenario (or all) and report
 *                                pass/fail (--seed N, --dir D for
 *                                scratch files; --raw runs the bare
 *                                faulting path so the process exits
 *                                with the SimError's code — see
 *                                docs/robustness.md)
 *
 * Common options:
 *   --seed N          master seed base (default 1)
 *   --instrs N        measured instructions per thread
 *   --warmup N        functional warmup instructions per thread
 *   --scale X         scale all run lengths (like SOEFAIR_SCALE)
 *   --no-fastforward  tick every stall cycle instead of jumping
 *                     quiescent runs (results are byte-identical
 *                     either way; see docs/performance.md). The
 *                     SOEFAIR_FASTFORWARD=0 environment variable
 *                     does the same.
 *
 * sweep options (see docs/robustness.md for the supervisor):
 *   --levels a,b,..   enforcement levels (default 0,0.25,0.5,1)
 *   --journal F       write-ahead journal path (default
 *                     soefair_sweep.journal; recreated per run)
 *   --resume F        resume from an existing journal: completed
 *                     jobs are replayed, the rest re-run
 *   --jobs N          parallel forked job slots (default 1)
 *   --threads N       in-process worker threads (default 0 = fork
 *                     only): first attempts run on a thread pool,
 *                     retries escalate to the fork loop; output is
 *                     byte-identical to fork mode
 *   --deadline S      per-attempt wall-clock deadline in seconds;
 *                     expired jobs are SIGKILLed (default 600;
 *                     fork attempts only — threaded attempts rely
 *                     on the simulated-time watchdog)
 *   --retries N       max attempts per transiently-failing job (3)
 *   --backoff S       base retry backoff in seconds (default 0.25)
 *   --inject SPEC     test hook: job@action[@maxAttempt] provokes
 *                     `action` (hang | kill | input | watchdog) in
 *                     the named job's child for attempts up to
 *                     maxAttempt (default: all); repeatable
 *
 * service options (enqueue / serve / drain; docs/robustness.md):
 *   --queue DIR       job queue directory (required)
 *   --cache DIR       content-addressed result cache directory
 *                     (serve/drain; empty disables the cache)
 *   --capacity N      queue admission bound, 0 = unbounded (enqueue)
 *   --worker NAME     worker name recorded in lease records
 *   --lease S         lease duration in seconds (default 60); a
 *                     worker silent this long is presumed dead and
 *                     its job is reclaimed at the same attempt
 *   --heartbeat S     lease renewal interval (default lease/3)
 *   --poll S          idle poll interval while other workers hold
 *                     live leases (default 0.5)
 *   --batch K         jobs claimed per flock round by each worker
 *                     thread (default 4; only with --threads)
 *   plus sweep's --jobs / --threads / --deadline / --retries /
 *   --backoff / --inject, which apply to the worker loop
 *
 * run-soe options:
 *   --policy P        miss-only | fairness | timeshare | quota
 *   --F X             target fairness for the fairness policy (0.5)
 *   --tsquota N       cycle quantum for timeshare (2000)
 *   --iquota N        instruction quota for the quota policy (2000)
 *   --measured        use measured Miss_lat (Section 6 extension)
 *   --l1-switch       also switch on L1 misses (Section 6 extension)
 *   --windows         print the per-delta-window table
 *   --stats           dump the full statistics tree to stderr
 *   --retire-trace F  write a text retirement trace to file F
 *
 * analytic options:
 *   --ipc a,b[,c...]  per-thread IPC_no_miss (default 2.5,2.5)
 *   --ipm a,b[,c...]  per-thread instructions per miss (15000,1000)
 *   --F X             target fairness (sweeps 0,1/4,1/2,1 if absent)
 *   --misslat N       model Miss_lat (300)
 *   --swlat N         model Switch_lat (25)
 */

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/analytic.hh"
#include "core/metrics.hh"
#include "harness/cli.hh"
#include "harness/cli_verbs.hh"
#include "harness/machine_config.hh"
#include "harness/runner.hh"
#include "harness/service/net/chaos.hh"
#include "harness/service/net/client.hh"
#include "harness/service/net/gateway.hh"
#include "harness/service/service.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/errors.hh"
#include "sim/faultinject.hh"
#include "sim/invariant.hh"
#include "sim/logging.hh"
#include "soe/policies.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/trace_file.hh"

using namespace soefair;
using namespace soefair::harness;

namespace
{

int
usage()
{
    printCliHelp(std::cerr);
    return 2;
}

RunConfig
runConfigFrom(const CliOptions &opts)
{
    RunConfig rc = RunConfig::fromEnv();
    if (opts.hasOption("scale"))
        rc = rc.scaled(opts.getDouble("scale", 1.0));
    rc.measureInstrs = opts.getUint("instrs", rc.measureInstrs);
    rc.warmupInstrs = opts.getUint("warmup", rc.warmupInstrs);
    if (opts.hasFlag("stats"))
        rc.statsDump = &std::cerr;
    rc.retireTracePath = opts.getString("retire-trace", "");
    if (opts.hasFlag("no-fastforward"))
        rc.fastForward = false;
    return rc;
}

ThreadSpec
specFor(const std::string &name, std::uint64_t seed)
{
    if (name.rfind("trace:", 0) == 0)
        return ThreadSpec::trace(name.substr(6));
    return ThreadSpec::benchmark(name, seed);
}

std::vector<double>
parseList(const std::string &csv)
{
    std::vector<double> vals;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        vals.push_back(std::atof(item.c_str()));
    return vals;
}

int
cmdList()
{
    std::cout << "Available benchmarks (SPEC CPU2000 stand-ins):\n";
    for (const auto &name : workload::spec::allNames())
        std::cout << "  " << name << "\n";
    return 0;
}

int
cmdMachine()
{
    MachineConfig::paperDefault().print(std::cout);
    return 0;
}

int
cmdRunSt(const CliOptions &opts)
{
    if (opts.positional().size() < 2) {
        std::cerr << "run-st needs a benchmark name\n";
        return 2;
    }
    const std::string bench = opts.positional()[1];
    Runner runner(MachineConfig::benchDefault());
    auto res = runner.runSingleThread(
        ThreadSpec::benchmark(bench, opts.getUint("seed", 1)),
        runConfigFrom(opts));

    TextTable t({"metric", "value"});
    t.addRow({"IPC", TextTable::num(res.ipc, 4)});
    t.addRow({"instructions", std::to_string(res.instrs)});
    t.addRow({"cycles", std::to_string(res.cycles)});
    t.addRow({"L2 misses", std::to_string(res.misses)});
    t.addRow({"IPM", TextTable::num(res.ipm, 1)});
    t.addRow({"CPM", TextTable::num(res.cpm, 1)});
    t.print(std::cout);
    return 0;
}

int
cmdRunSoe(const CliOptions &opts)
{
    const auto &pos = opts.positional();
    if (pos.size() < 3) {
        std::cerr << "run-soe needs at least two benchmark names\n";
        return 2;
    }
    const unsigned n = unsigned(pos.size() - 1);
    const std::uint64_t seed = opts.getUint("seed", 1);

    MachineConfig mc = MachineConfig::benchDefault();
    if (opts.hasFlag("l1-switch"))
        mc.soe.switchOnL1Miss = true;
    Runner runner(mc);
    RunConfig rc = runConfigFrom(opts);

    std::vector<ThreadSpec> specs;
    std::vector<StRunResult> sts;
    for (unsigned i = 0; i < n; ++i) {
        specs.push_back(specFor(pos[1 + i], seed + i));
        std::cerr << "[cli] reference run: " << pos[1 + i] << "\n";
        // Reference runs never dump stats or traces.
        RunConfig refRc = rc;
        refRc.statsDump = nullptr;
        refRc.retireTracePath.clear();
        sts.push_back(runner.runSingleThread(specs.back(), refRc));
    }

    const std::string polName =
        opts.getString("policy", "fairness");
    std::unique_ptr<soe::SchedulingPolicy> policy;
    if (polName == "miss-only") {
        policy = std::make_unique<soe::MissOnlyPolicy>();
    } else if (polName == "fairness") {
        policy = std::make_unique<soe::FairnessPolicy>(
            opts.getDouble("F", 0.5), mc.soe.missLatency, n,
            opts.hasFlag("measured"));
    } else if (polName == "timeshare") {
        policy = std::make_unique<soe::TimeSharePolicy>(
            opts.getUint("tsquota", 2000));
    } else if (polName == "quota") {
        policy = std::make_unique<soe::FixedQuotaPolicy>(
            double(opts.getUint("iquota", 2000)));
    } else {
        std::cerr << "unknown policy '" << polName << "'\n";
        return 2;
    }

    std::cerr << "[cli] SOE run (" << policy->name() << ")\n";
    auto res = runner.runSoe(specs, *policy, rc,
                             opts.hasFlag("windows"));

    TextTable t({"thread", "bench", "IPC alone", "IPC SOE",
                 "speedup"});
    std::vector<double> speedups;
    for (unsigned i = 0; i < n; ++i) {
        speedups.push_back(res.threads[i].ipc / sts[i].ipc);
        t.addRow({std::to_string(i), pos[1 + i],
                  TextTable::num(sts[i].ipc, 3),
                  TextTable::num(res.threads[i].ipc, 3),
                  TextTable::num(speedups.back(), 3)});
    }
    t.print(std::cout);
    std::cout << "policy          : " << policy->name() << "\n"
              << "total IPC       : "
              << TextTable::num(res.ipcTotal, 4) << "\n"
              << "fairness (Eq.4) : "
              << TextTable::num(core::fairnessOfSpeedups(speedups), 3)
              << "\n"
              << "switches        : " << res.switchesMiss
              << " miss / " << res.switchesForced << " forced / "
              << res.switchesQuota << " quota\n";

    if (opts.hasFlag("windows")) {
        std::cout << "\nPer-delta windows:\n";
        TextTable w({"end tick", "measured Miss_lat", "quotas..."});
        for (const auto &win : res.windows) {
            std::string quotas;
            for (const auto &th : win.threads) {
                quotas += th.quota > 1e17
                    ? "inf "
                    : TextTable::num(th.quota, 0) + " ";
            }
            w.addRow({std::to_string(win.endTick),
                      TextTable::num(win.measuredMissLat, 0),
                      quotas});
        }
        w.print(std::cout);
    }
    return 0;
}

int
cmdRecordTrace(const CliOptions &opts)
{
    if (opts.positional().size() < 2) {
        std::cerr << "record-trace needs a benchmark name\n";
        return 2;
    }
    const std::string bench = opts.positional()[1];
    const std::string out =
        opts.getString("out", bench + ".soetrace");
    const std::uint64_t instrs =
        opts.getUint("instrs", 1000 * 1000);
    workload::WorkloadGenerator gen(
        workload::spec::byName(bench), 0, opts.getUint("seed", 1));
    workload::TraceWriter writer(out, 0);
    writer.record(gen, instrs);
    writer.close();
    std::cout << "wrote " << writer.written() << " ops to " << out
              << "\n";
    return 0;
}

/** One --inject spec: provoke `action` in `job`'s forked child for
 *  attempts up to `maxAttempt` (the supervisor test hook). */
struct InjectSpec
{
    std::string job;
    std::string action;
    unsigned maxAttempt = ~0u;
};

bool
parseInjects(const CliOptions &opts, std::vector<InjectSpec> &out)
{
    for (const auto &spec : opts.getStrings("inject")) {
        std::vector<std::string> parts;
        std::stringstream ss(spec);
        std::string item;
        while (std::getline(ss, item, '@'))
            parts.push_back(item);
        if (parts.size() < 2 || parts.size() > 3) {
            std::cerr << "--inject expects job@action[@maxAttempt], "
                      << "got '" << spec << "'\n";
            return false;
        }
        InjectSpec is;
        is.job = parts[0];
        is.action = parts[1];
        if (is.action != "hang" && is.action != "kill" &&
            is.action != "input" && is.action != "watchdog") {
            std::cerr << "--inject action must be hang | kill | "
                      << "input | watchdog, got '" << is.action
                      << "'\n";
            return false;
        }
        if (parts.size() == 3)
            is.maxAttempt = unsigned(std::atoi(parts[2].c_str()));
        out.push_back(std::move(is));
    }
    return true;
}

/** Runs inside the forked job child (the supervisor attempt hook). */
void
provokeInjectedFault(const InjectSpec &is)
{
    if (is.action == "hang") {
        // Busy-hang: only the supervisor's deadline SIGKILL ends it.
        volatile std::uint64_t spin = 0;
        for (;;)
            spin = spin + 1;
    } else if (is.action == "kill") {
        raise(SIGKILL);
    } else if (is.action == "input") {
        raiseError<InputError>("injected input fault in job '",
                               is.job, "'");
    } else if (is.action == "watchdog") {
        raiseError<WatchdogTimeout>("injected watchdog fault in ",
                                    "job '", is.job, "'");
    }
}

/** Parse the campaign selection shared by sweep / enqueue / serve /
 *  drain (--pairs, --levels, run options) into a manifest. */
bool
campaignFromOpts(const CliOptions &opts,
                 service::CampaignManifest &m)
{
    const std::string pairsArg = opts.getString("pairs", "");
    if (pairsArg.empty()) {
        m.pairs = workload::spec::evaluationPairs();
    } else {
        std::stringstream ss(pairsArg);
        std::string item;
        while (std::getline(ss, item, ',')) {
            const auto colon = item.find(':');
            if (colon == std::string::npos) {
                std::cerr << "--pairs expects a:b,c:d\n";
                return false;
            }
            m.pairs.emplace_back(item.substr(0, colon),
                                 item.substr(colon + 1));
        }
    }

    m.levels = EvaluationSweep::standardLevels();
    if (opts.hasOption("levels"))
        m.levels = parseList(opts.getString("levels", ""));
    if (m.levels.empty()) {
        std::cerr << "--levels expects a,b,...\n";
        return false;
    }
    m.rc = runConfigFrom(opts);
    return true;
}

int
cmdSweep(const CliOptions &opts)
{
    service::CampaignManifest manifest;
    if (!campaignFromOpts(opts, manifest))
        return 2;
    const auto &pairs = manifest.pairs;
    const auto &fLevels = manifest.levels;

    std::vector<InjectSpec> injects;
    if (!parseInjects(opts, injects))
        return 2;

    SweepCampaign campaign(MachineConfig::benchDefault(),
                           manifest.rc, pairs, fLevels);
    if (!injects.empty()) {
        campaign.setAttemptHook(
            [injects](const std::string &job, unsigned attempt) {
                for (const auto &is : injects) {
                    if (is.job == job && attempt <= is.maxAttempt)
                        provokeInjectedFault(is);
                }
            });
    }

    SupervisorConfig scfg;
    scfg.deadlineSeconds = opts.getDouble("deadline", 600.0);
    scfg.maxAttempts = unsigned(opts.getUint("retries", 3));
    scfg.backoffBaseSeconds = opts.getDouble("backoff", 0.25);
    scfg.jobSlots = unsigned(opts.getUint("jobs", 1));
    scfg.threads = unsigned(opts.getUint("threads", 0));
    scfg.progress = &std::cerr;

    const bool resume = opts.hasOption("resume");
    const std::string journal = resume
        ? opts.getString("resume", "")
        : opts.getString("journal", "soefair_sweep.journal");

    CampaignResult agg = campaign.run(scfg, journal, resume);

    const std::string out = opts.getString("out", "");
    if (out.empty()) {
        writeCampaignCsv(std::cout, agg);
    } else {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot write '" << out << "'\n";
            return 1;
        }
        writeCampaignCsv(os, agg);
        std::cout << "wrote " << agg.results.size() << " pairs to "
                  << out << "\n";
    }

    if (!agg.complete()) {
        std::cerr << "[sweep] PARTIAL results: " << agg.missing.size()
                  << " cell(s) missing (journal: " << journal
                  << "; finish with `sweep --resume " << journal
                  << "`)\n";
        for (const auto &m : agg.missing)
            std::cerr << "[sweep]   " << m.marker() << "\n";
    }
    return agg.exitCode();
}

/** Graceful-shutdown flag set by SIGTERM/SIGINT in serve/drain. */
volatile std::sig_atomic_t gStopRequested = 0;

extern "C" void
onStopSignal(int)
{
    gStopRequested = 1;
}

bool
serviceConfigFrom(const CliOptions &opts, service::ServiceConfig &cfg)
{
    cfg.queueDir = opts.getString("queue", "");
    if (cfg.queueDir.empty()) {
        std::cerr << "--queue DIR is required\n";
        return false;
    }
    cfg.cacheDir = opts.getString("cache", "");
    cfg.workerName = opts.getString("worker", "worker");
    cfg.leaseSeconds = opts.getDouble("lease", 60.0);
    cfg.heartbeatSeconds = opts.getDouble("heartbeat", 0.0);
    cfg.deadlineSeconds = opts.getDouble("deadline", 600.0);
    cfg.maxAttempts = unsigned(opts.getUint("retries", 3));
    cfg.backoffBaseSeconds = opts.getDouble("backoff", 0.25);
    cfg.slots = unsigned(opts.getUint("jobs", 1));
    cfg.threads = unsigned(opts.getUint("threads", 0));
    cfg.batch = unsigned(opts.getUint("batch", 4));
    cfg.capacity = unsigned(opts.getUint("capacity", 0));
    cfg.pollSeconds = opts.getDouble("poll", 0.5);
    cfg.progress = &std::cerr;
    cfg.stopFlag = &gStopRequested;
    return true;
}

int
cmdEnqueue(const CliOptions &opts)
{
    service::CampaignManifest manifest;
    service::ServiceConfig cfg;
    if (!campaignFromOpts(opts, manifest) ||
        !serviceConfigFrom(opts, cfg))
        return 2;

    service::SweepService svc(cfg);
    const auto stats = svc.enqueueCampaign(manifest);
    std::cout << "enqueued " << stats.added << " job(s), "
              << stats.duplicates << " already queued, "
              << stats.rejected << " rejected\n";
    return stats.rejected ? service::exitQueueSaturated : 0;
}

int
runWorker(const CliOptions &opts, service::SweepService &svc,
          service::WorkerStats &stats)
{
    std::vector<InjectSpec> injects;
    if (!parseInjects(opts, injects))
        return 2;
    if (!injects.empty()) {
        svc.setAttemptHook(
            [injects](const std::string &job, unsigned attempt) {
                for (const auto &is : injects) {
                    if (is.job == job && attempt <= is.maxAttempt)
                        provokeInjectedFault(is);
                }
            });
    }
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);
    stats = svc.serve();
    return 0;
}

int
cmdServe(const CliOptions &opts)
{
    service::ServiceConfig cfg;
    if (!serviceConfigFrom(opts, cfg))
        return 2;
    service::SweepService svc(cfg);
    service::WorkerStats stats;
    return runWorker(opts, svc, stats);
}

int
cmdDrain(const CliOptions &opts)
{
    service::CampaignManifest manifest;
    service::ServiceConfig cfg;
    if (!campaignFromOpts(opts, manifest) ||
        !serviceConfigFrom(opts, cfg))
        return 2;

    // Resuming an existing queue: its manifest defines the campaign,
    // so `drain --queue DIR` alone finishes any interrupted campaign
    // regardless of which --pairs/--levels created it.
    if (service::JobQueue::exists(cfg.queueDir)) {
        try {
            manifest = service::loadManifest(cfg.queueDir);
        } catch (const CheckpointError &) {
            // Queue without a readable manifest: enqueueCampaign
            // rewrites it from the options (key-checked).
        }
    }

    service::SweepService svc(cfg);
    const auto eq = svc.enqueueCampaign(manifest);

    service::WorkerStats stats;
    int rc = runWorker(opts, svc, stats);
    if (rc != 0)
        return rc;

    service::SweepService agger(cfg);
    CampaignResult agg = agger.aggregate();

    const std::string out = opts.getString("out", "");
    if (out.empty()) {
        writeCampaignCsv(std::cout, agg);
    } else {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot write '" << out << "'\n";
            return 1;
        }
        writeCampaignCsv(os, agg);
        std::cout << "wrote " << agg.results.size() << " pairs to "
                  << out << "\n";
    }

    if (!agg.complete()) {
        std::cerr << "[drain] PARTIAL results: " << agg.missing.size()
                  << " cell(s) missing (queue: " << cfg.queueDir
                  << "; finish with `drain --queue " << cfg.queueDir
                  << "`)\n";
        for (const auto &m : agg.missing)
            std::cerr << "[drain]   " << m.marker() << "\n";
    }
    if (eq.rejected && agg.complete())
        return service::exitQueueSaturated;
    return agg.exitCode();
}

namespace net = service::net;

/** Shared CSV emission for sweep-shaped aggregates. */
int
emitAggregate(const CliOptions &opts, const CampaignResult &agg,
              const char *tag)
{
    const std::string out = opts.getString("out", "");
    if (out.empty()) {
        writeCampaignCsv(std::cout, agg);
    } else {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot write '" << out << "'\n";
            return 1;
        }
        writeCampaignCsv(os, agg);
        std::cout << "wrote " << agg.results.size() << " pairs to "
                  << out << "\n";
    }
    if (!agg.complete()) {
        std::cerr << "[" << tag << "] PARTIAL results: "
                  << agg.missing.size() << " cell(s) missing\n";
        for (const auto &m : agg.missing)
            std::cerr << "[" << tag << "]   " << m.marker() << "\n";
    }
    return agg.exitCode();
}

int
cmdGateway(const CliOptions &opts)
{
    const std::string listen = opts.getString("listen", "");
    const std::string root = opts.getString("root", "");
    if (listen.empty() || root.empty()) {
        std::cerr << "gateway needs --listen ADDR and --root DIR\n";
        return 2;
    }
    net::GatewayConfig cfg;
    cfg.listen = net::NetAddress::parse(listen);
    cfg.rootDir = root;
    cfg.tenantQuota = unsigned(opts.getUint("quota", 0));
    cfg.maxCampaigns = unsigned(opts.getUint("max-campaigns", 0));
    cfg.queueCapacity = unsigned(opts.getUint("capacity", 0));
    cfg.runWorkers = !opts.hasFlag("no-workers");
    cfg.slots = unsigned(opts.getUint("jobs", 1));
    cfg.maxAttempts = unsigned(opts.getUint("retries", 3));
    cfg.backoffBaseSeconds = opts.getDouble("backoff", 0.25);
    cfg.leaseSeconds = opts.getDouble("lease", 60.0);
    cfg.deadlineSeconds = opts.getDouble("deadline", 600.0);
    cfg.retryBackoffMs = unsigned(opts.getUint("retry-ms", 200));
    cfg.addrFile = opts.getString("addr-file", "");
    cfg.progress = &std::cerr;
    cfg.stopFlag = &gStopRequested;
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);
    net::Gateway gw(cfg);
    gw.open();
    gw.run();
    return 0;
}

int
cmdChaosProxy(const CliOptions &opts)
{
    const std::string listen = opts.getString("listen", "");
    const std::string upstream = opts.getString("upstream", "");
    if (listen.empty() || upstream.empty()) {
        std::cerr << "chaosproxy needs --listen ADDR and "
                     "--upstream ADDR\n";
        return 2;
    }
    net::ChaosConfig cfg;
    cfg.listen = net::NetAddress::parse(listen);
    cfg.upstream = net::NetAddress::parse(upstream);
    cfg.seed = opts.getUint("seed", 1);
    cfg.faultRate = opts.getDouble("fault-rate", 0.25);
    cfg.maxFaults = unsigned(opts.getUint("max-faults", 6));
    cfg.maxDelayMs = unsigned(opts.getUint("max-delay-ms", 40));
    cfg.progress = &std::cerr;
    cfg.stopFlag = &gStopRequested;
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);
    net::ChaosProxy proxy(cfg);
    proxy.open();
    const std::string addrFile = opts.getString("addr-file", "");
    if (!addrFile.empty()) {
        std::ofstream os(addrFile);
        os << proxy.boundAddress().spec() << "\n";
    }
    proxy.run();
    return 0;
}

bool
clientConfigFrom(const CliOptions &opts, net::ClientConfig &cfg)
{
    cfg.server = opts.getString("server", "");
    if (cfg.server.empty()) {
        std::cerr << "--server ADDR is required\n";
        return false;
    }
    cfg.tenant = opts.getString("tenant", "default");
    cfg.ioTimeoutSeconds = opts.getDouble("timeout", 10.0);
    cfg.connectTimeoutSeconds =
        opts.getDouble("connect-timeout", 5.0);
    cfg.maxAttempts = unsigned(opts.getUint("attempts", 8));
    cfg.backoffBaseSeconds = opts.getDouble("client-backoff", 0.1);
    cfg.seed = opts.getUint("seed", 1);
    cfg.retryLaterBudget =
        unsigned(opts.getUint("retry-later", 64));
    if (opts.hasFlag("no-retry")) {
        cfg.retryLaterBudget = 0;
        cfg.maxAttempts = 1;
    }
    cfg.progress = &std::cerr;
    return true;
}

int
cmdSubmit(const CliOptions &opts)
{
    service::CampaignManifest manifest;
    net::ClientConfig cfg;
    if (!campaignFromOpts(opts, manifest) ||
        !clientConfigFrom(opts, cfg))
        return 2;

    net::GatewayClient client(cfg);
    const net::SubmitReceipt receipt = client.submit(manifest);
    std::cout << "submitted campaign " << receipt.key << " ("
              << receipt.added << " added, " << receipt.duplicates
              << " already queued, " << receipt.total
              << " jobs total";
    if (receipt.retries)
        std::cout << ", " << receipt.retries << " retries";
    std::cout << ")\n";
    if (opts.hasFlag("no-watch"))
        return 0;

    CampaignResult agg = client.watch(manifest);
    return emitAggregate(opts, agg, "submit");
}

int
cmdWatch(const CliOptions &opts)
{
    net::ClientConfig cfg;
    if (!clientConfigFrom(opts, cfg))
        return 2;
    net::GatewayClient client(cfg);

    service::CampaignManifest manifest;
    const std::string key = opts.getString("key", "");
    if (!key.empty()) {
        manifest = client.fetchManifest(key);
    } else if (!campaignFromOpts(opts, manifest)) {
        return 2;
    }

    CampaignResult agg = client.watch(manifest);
    return emitAggregate(opts, agg, "watch");
}

int
cmdAnalytic(const CliOptions &opts)
{
    const auto ipcs =
        parseList(opts.getString("ipc", "2.5,2.5"));
    const auto ipms =
        parseList(opts.getString("ipm", "15000,1000"));
    if (ipcs.size() != ipms.size() || ipcs.size() < 2) {
        std::cerr << "--ipc and --ipm need matching lists of >= 2 "
                  << "values\n";
        return 2;
    }
    std::vector<core::ThreadModel> threads;
    for (std::size_t i = 0; i < ipcs.size(); ++i) {
        threads.push_back(
            core::ThreadModel::fromIpcNoMiss(ipcs[i], ipms[i]));
    }
    core::AnalyticSoe m(threads,
                        {opts.getDouble("misslat", 300.0),
                         opts.getDouble("swlat", 25.0)});

    std::vector<double> fs = {0.0, 0.25, 0.5, 1.0};
    if (opts.hasOption("F"))
        fs = {opts.getDouble("F", 0.5)};

    TextTable t({"F", "fairness", "throughput", "speedup/ST",
                 "quotas..."});
    for (double f : fs) {
        auto q = m.quotasForFairness(f);
        std::string quotas;
        for (double v : q)
            quotas += TextTable::num(v, 0) + " ";
        t.addRow({f == 0 ? "0" : TextTable::num(f, 3),
                  TextTable::num(m.fairness(q), 3),
                  TextTable::num(m.throughput(q), 3),
                  TextTable::num(m.speedupOverSingleThread(q), 3),
                  quotas});
    }
    t.print(std::cout);
    return 0;
}

int
cmdFaults(const CliOptions &opts)
{
    const std::string which = opts.positional().size() > 1
        ? opts.positional()[1]
        : "all";
    const std::uint64_t seed = opts.getUint("seed", 1);
    const std::string dir = opts.getString("dir", ".");

    std::vector<soefair::sim::FaultClass> faults;
    if (which == "all") {
        faults = soefair::sim::allFaultClasses();
    } else {
        soefair::sim::FaultClass f;
        if (!soefair::sim::faultByName(which, f)) {
            std::cerr << "unknown fault scenario '" << which
                      << "'; known:";
            for (auto k : soefair::sim::allFaultClasses())
                std::cerr << " " << soefair::sim::faultName(k);
            std::cerr << "\n";
            return 2;
        }
        faults = {f};
    }

    if (opts.hasFlag("raw")) {
        if (faults.size() != 1) {
            std::cerr << "--raw needs exactly one scenario\n";
            return 2;
        }
        // The typed SimError escapes to main(), which maps it to
        // the class's exit code; completion means exit 0.
        soefair::sim::provokeFault(faults[0], seed, dir);
        return 0;
    }

    TextTable t({"scenario", "expected exit", "result", "detail"});
    unsigned failed = 0;
    for (auto f : faults) {
        auto rep = soefair::sim::runFaultScenario(f, seed, dir);
        if (!rep.passed)
            ++failed;
        // Keep the table single-line per scenario.
        std::string detail = rep.detail;
        for (char &ch : detail) {
            if (ch == '\n')
                ch = ' ';
        }
        if (detail.size() > 60)
            detail = detail.substr(0, 57) + "...";
        t.addRow({rep.scenario,
                  std::to_string(soefair::sim::expectedExitCode(f)),
                  rep.passed ? "pass" : "FAIL", detail});
    }
    t.print(std::cout);
    std::cout << (faults.size() - failed) << "/" << faults.size()
              << " scenarios passed (seed " << seed << ")\n";
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    // `--help`/`-h` anywhere renders the verb registry (before
    // option parsing, so it never consumes a value).
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg != "--help" && arg != "-h")
            continue;
        if (const CliVerb *verb = findCliVerb(argv[1]))
            printCliVerbHelp(std::cout, *verb);
        else
            printCliHelp(std::cout);
        return 0;
    }

    const std::vector<std::string> flagNames = {
        "measured", "l1-switch", "windows", "stats", "raw",
        "no-fastforward", "no-workers", "no-watch", "no-retry"};
    CliOptions opts(argc - 1, argv + 1, flagNames);
    if (opts.positional().empty())
        return usage();

    // The failure-to-exit-code mapping lives in one shared place
    // (harness::runWithExitCodeMapping) so tests can round-trip
    // every SimError class through exactly the code path a
    // scripted caller observes.
    return harness::runWithExitCodeMapping([&]() -> int {
        const std::string &cmd = opts.positional()[0];
        if (cmd == "help") {
            if (opts.positional().size() > 1) {
                const CliVerb *verb =
                    findCliVerb(opts.positional()[1]);
                if (!verb) {
                    std::cerr << "unknown command '"
                              << opts.positional()[1] << "'\n";
                    return 2;
                }
                printCliVerbHelp(std::cout, *verb);
            } else {
                printCliHelp(std::cout);
            }
            return 0;
        }
        if (cmd == "list")
            return cmdList();
        if (cmd == "machine")
            return cmdMachine();
        if (cmd == "run-st")
            return cmdRunSt(opts);
        if (cmd == "run-soe")
            return cmdRunSoe(opts);
        if (cmd == "record-trace")
            return cmdRecordTrace(opts);
        if (cmd == "sweep")
            return cmdSweep(opts);
        if (cmd == "enqueue")
            return cmdEnqueue(opts);
        if (cmd == "serve")
            return cmdServe(opts);
        if (cmd == "drain")
            return cmdDrain(opts);
        if (cmd == "gateway")
            return cmdGateway(opts);
        if (cmd == "submit")
            return cmdSubmit(opts);
        if (cmd == "watch")
            return cmdWatch(opts);
        if (cmd == "chaosproxy")
            return cmdChaosProxy(opts);
        if (cmd == "analytic")
            return cmdAnalytic(opts);
        if (cmd == "faults")
            return cmdFaults(opts);
        std::cerr << "unknown command '" << cmd << "'\n";
        return usage();
    });
}
